//! A hand-rolled, line/column-tracking Rust tokenizer.
//!
//! This is *not* a full Rust lexer — it is exactly the subset the rule
//! catalog needs to reason about source text without being fooled by
//! comments, strings, or char-vs-lifetime ambiguity:
//!
//! * line (`//`, `///`, `//!`) and **nested** block comments are skipped;
//! * cooked, raw (`r"…"`, `r#"…"#`), byte (`b"…"`), and raw-byte strings
//!   are lexed as single [`TokKind::Str`] tokens, so banned names inside
//!   string literals never fire a rule;
//! * char literals (`'x'`, `'\n'`, `'\u{7f}'`, `b'x'`) are distinguished
//!   from lifetimes (`'a`, `'static`, `'_`);
//! * raw identifiers (`r#match`) lex as plain identifiers;
//! * numeric literals classify as integer or float (decimal point,
//!   exponent, or `f32`/`f64` suffix ⇒ float; `0x`/`0o`/`0b` ⇒ integer),
//!   which rule D03 leans on;
//! * multi-char operators the rules care about (`==`, `!=`, `::`, `..`,
//!   `..=`, `->`, `=>`, `<=`, `>=`, `&&`, `||`) are fused into single
//!   punctuation tokens.
//!
//! Every token carries its 1-based line and column, and — after
//! [`crate::rules::mark_test_regions`] runs — whether it sits inside
//! `#[cfg(test)]` / `#[test]` / `mod tests` scope.

/// What a token is, as far as the rule catalog cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A char or byte-char literal.
    Char,
    /// Any string literal (cooked / raw / byte / raw-byte).
    Str {
        /// True when the literal's content is empty or all-whitespace —
        /// what rule D04 calls a "bare" `expect` message.
        empty: bool,
    },
    /// An integer literal (including `0x…`/`0o…`/`0b…`).
    Int,
    /// A float literal (decimal point, exponent, or `f…` suffix).
    Float,
    /// Punctuation; `text` holds the (possibly multi-char) operator.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The lexeme (for `Str`, the raw lexeme including quotes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
    /// Set by [`crate::rules::mark_test_regions`]: the token lives in
    /// test-gated code (`#[cfg(test)]`, `#[test]`, `#[bench]`, or a
    /// `mod test…` block).
    pub in_test: bool,
}

impl Tok {
    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    /// Char at `i + k`, or `'\0'` past the end.
    fn peek(&self, k: usize) -> char {
        self.chars.get(self.i + k).copied().unwrap_or('\0')
    }

    fn at_end(&self) -> bool {
        self.i >= self.chars.len()
    }

    /// Consumes one char, tracking line/col.
    fn bump(&mut self) {
        if let Some(&c) = self.chars.get(self.i) {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// The lexeme spanned since `start` (a char index).
    fn text_since(&self, start: usize) -> String {
        self.chars[start..self.i].iter().collect()
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. The lexer is total: malformed input (unterminated
/// strings or comments) consumes to end-of-file rather than failing, so
/// the lint pass degrades gracefully on files rustc would reject anyway.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks: Vec<Tok> = Vec::new();
    while !lx.at_end() {
        let c = lx.peek(0);
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        // Comments.
        if c == '/' && lx.peek(1) == '/' {
            while !lx.at_end() && lx.peek(0) != '\n' {
                lx.bump();
            }
            continue;
        }
        if c == '/' && lx.peek(1) == '*' {
            lx.bump_n(2);
            let mut depth = 1usize;
            while !lx.at_end() && depth > 0 {
                if lx.peek(0) == '/' && lx.peek(1) == '*' {
                    depth += 1;
                    lx.bump_n(2);
                } else if lx.peek(0) == '*' && lx.peek(1) == '/' {
                    depth -= 1;
                    lx.bump_n(2);
                } else {
                    lx.bump();
                }
            }
            continue;
        }
        // String-ish prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…', r#ident.
        if (c == 'r' || c == 'b') && try_lex_prefixed(&mut lx, &mut toks, line, col) {
            continue;
        }
        if is_ident_start(c) {
            let start = lx.i;
            while is_ident_continue(lx.peek(0)) {
                lx.bump();
            }
            toks.push(tok(TokKind::Ident, lx.text_since(start), line, col));
            continue;
        }
        if c == '"' {
            let text = lex_cooked_string(&mut lx);
            push_str(&mut toks, text, line, col);
            continue;
        }
        if c == '\'' {
            lex_char_or_lifetime(&mut lx, &mut toks, line, col);
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut lx, &mut toks, line, col);
            continue;
        }
        // Punctuation: fuse the multi-char operators the rules care about.
        let three: String = [lx.peek(0), lx.peek(1), lx.peek(2)].iter().collect();
        let two: String = [lx.peek(0), lx.peek(1)].iter().collect();
        if three == "..=" {
            lx.bump_n(3);
            toks.push(tok(TokKind::Punct, three, line, col));
            continue;
        }
        const TWO_CHAR: [&str; 10] = ["::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||"];
        if TWO_CHAR.contains(&two.as_str()) {
            lx.bump_n(2);
            toks.push(tok(TokKind::Punct, two, line, col));
            continue;
        }
        lx.bump();
        toks.push(tok(TokKind::Punct, c.to_string(), line, col));
    }
    toks
}

fn tok(kind: TokKind, text: String, line: u32, col: u32) -> Tok {
    Tok {
        kind,
        text,
        line,
        col,
        in_test: false,
    }
}

/// Classifies and pushes a string token, computing the "bare" flag from
/// the raw lexeme (content between the outermost quotes).
fn push_str(toks: &mut Vec<Tok>, text: String, line: u32, col: u32) {
    let inner: String = {
        let s: Vec<char> = text.chars().collect();
        let first_quote = s.iter().position(|&c| c == '"').map_or(0, |p| p + 1);
        let last_quote = s.iter().rposition(|&c| c == '"').unwrap_or(0);
        if first_quote <= last_quote {
            s[first_quote..last_quote].iter().collect()
        } else {
            String::new()
        }
    };
    let empty = inner.trim().is_empty();
    toks.push(tok(TokKind::Str { empty }, text, line, col));
}

/// Handles `r`/`b`-prefixed literals and raw identifiers. Returns true
/// when it consumed something; false means "lex as a plain identifier".
fn try_lex_prefixed(lx: &mut Lexer, toks: &mut Vec<Tok>, line: u32, col: u32) -> bool {
    let c = lx.peek(0);
    // b'x' — byte char.
    if c == 'b' && lx.peek(1) == '\'' {
        let start = lx.i;
        lx.bump(); // b
        lex_char_body(lx);
        toks.push(tok(TokKind::Char, lx.text_since(start), line, col));
        return true;
    }
    // b"…" — cooked byte string.
    if c == 'b' && lx.peek(1) == '"' {
        let start = lx.i;
        lx.bump(); // b
        let _ = lex_cooked_string(lx);
        push_str(toks, lx.text_since(start), line, col);
        return true;
    }
    // r"…", r#"…"#, br"…", br#"…"# — raw (byte) strings; r#ident.
    let mut j = 1; // past the leading r or b
    if c == 'b' {
        if lx.peek(1) != 'r' {
            return false;
        }
        j = 2;
    }
    let mut hashes = 0usize;
    while lx.peek(j + hashes) == '#' {
        hashes += 1;
    }
    if lx.peek(j + hashes) == '"' {
        let start = lx.i;
        lx.bump_n(j + hashes + 1); // prefix + hashes + opening quote
        loop {
            if lx.at_end() {
                break;
            }
            if lx.peek(0) == '"' {
                let mut k = 1;
                while k <= hashes && lx.peek(k) == '#' {
                    k += 1;
                }
                if k == hashes + 1 {
                    lx.bump_n(hashes + 1);
                    break;
                }
            }
            lx.bump();
        }
        push_str(toks, lx.text_since(start), line, col);
        return true;
    }
    // r#ident — raw identifier (only r, exactly one #, then ident start).
    if c == 'r' && hashes == 1 && is_ident_start(lx.peek(2)) {
        lx.bump_n(2);
        let start = lx.i;
        while is_ident_continue(lx.peek(0)) {
            lx.bump();
        }
        toks.push(tok(TokKind::Ident, lx.text_since(start), line, col));
        return true;
    }
    false
}

/// Consumes a cooked string starting at `"`; returns the lexeme.
fn lex_cooked_string(lx: &mut Lexer) -> String {
    let start = lx.i;
    lx.bump(); // opening quote
    while !lx.at_end() {
        match lx.peek(0) {
            '\\' => lx.bump_n(2),
            '"' => {
                lx.bump();
                break;
            }
            _ => lx.bump(),
        }
    }
    lx.text_since(start)
}

/// Consumes a char literal starting at `'` (escape-aware, `\u{…}` ok).
fn lex_char_body(lx: &mut Lexer) {
    lx.bump(); // opening quote
    if lx.peek(0) == '\\' {
        lx.bump_n(2); // backslash + escaped char (u of \u{…} included)
        while !lx.at_end() && lx.peek(0) != '\'' {
            lx.bump();
        }
        lx.bump(); // closing quote
    } else {
        lx.bump(); // the char
        lx.bump(); // closing quote
    }
}

/// `'…` is a char literal or a lifetime; disambiguate and push.
fn lex_char_or_lifetime(lx: &mut Lexer, toks: &mut Vec<Tok>, line: u32, col: u32) {
    let start = lx.i;
    if lx.peek(1) == '\\' || (lx.peek(2) == '\'' && lx.peek(1) != '\'') {
        lex_char_body(lx);
        toks.push(tok(TokKind::Char, lx.text_since(start), line, col));
    } else {
        // Lifetime: ' followed by ident chars (or _), no closing quote.
        lx.bump();
        while is_ident_continue(lx.peek(0)) {
            lx.bump();
        }
        toks.push(tok(TokKind::Lifetime, lx.text_since(start), line, col));
    }
}

/// Lexes a numeric literal, classifying integer vs float.
fn lex_number(lx: &mut Lexer, toks: &mut Vec<Tok>, line: u32, col: u32) {
    let start = lx.i;
    let mut float = false;
    if lx.peek(0) == '0' && matches!(lx.peek(1), 'x' | 'o' | 'b') {
        lx.bump_n(2);
        while lx.peek(0).is_ascii_alphanumeric() || lx.peek(0) == '_' {
            lx.bump();
        }
        toks.push(tok(TokKind::Int, lx.text_since(start), line, col));
        return;
    }
    while lx.peek(0).is_ascii_digit() || lx.peek(0) == '_' {
        lx.bump();
    }
    if lx.peek(0) == '.' {
        let next = lx.peek(1);
        if next.is_ascii_digit() {
            lx.bump(); // the point
            while lx.peek(0).is_ascii_digit() || lx.peek(0) == '_' {
                lx.bump();
            }
            float = true;
        } else if next != '.' && !is_ident_start(next) {
            // `1.` — trailing-dot float (stop before `..` ranges and
            // method calls / tuple indexing).
            lx.bump();
            float = true;
        }
    }
    if matches!(lx.peek(0), 'e' | 'E') {
        let (n1, n2) = (lx.peek(1), lx.peek(2));
        if n1.is_ascii_digit() || (matches!(n1, '+' | '-') && n2.is_ascii_digit()) {
            lx.bump(); // e
            if matches!(lx.peek(0), '+' | '-') {
                lx.bump();
            }
            while lx.peek(0).is_ascii_digit() || lx.peek(0) == '_' {
                lx.bump();
            }
            float = true;
        }
    }
    // Type suffix (f64, u32, usize, …).
    let suffix_start = lx.i;
    while is_ident_continue(lx.peek(0)) {
        lx.bump();
    }
    if lx.chars.get(suffix_start).copied() == Some('f') {
        float = true;
    }
    let kind = if float { TokKind::Float } else { TokKind::Int };
    toks.push(tok(kind, lx.text_since(start), line, col));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let toks = kinds("a // unwrap()\nb /* x /* thread_rng */ y */ c");
        let idents: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
    }

    #[test]
    fn strings_hide_banned_names_and_track_emptiness() {
        let toks = lex(r#"let s = "SystemTime::now"; let e = ""; let w = " ";"#);
        let strs: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Str { empty } => Some(empty),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [false, true, true]);
        assert!(!toks.iter().any(|t| t.is_ident("SystemTime")));
    }

    #[test]
    fn raw_and_byte_strings_lex_as_single_tokens() {
        let toks = lex(r###"let a = r#"has "quotes" and unwrap()"#; let b = br"x"; end"###);
        assert!(toks.iter().any(|t| t.is_ident("end")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        let n_strings = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str { .. }))
            .count();
        assert_eq!(n_strings, 2);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = lex(
            r"let c: char = 'x'; let n = '\n'; let u = '\u{7f}'; fn f<'a>(x: &'a str, y: &'_ u8) {}",
        );
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'_"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let toks = lex("0 1_000 0xFF 0b10 1.5 2. 1e3 2E-4 3f64 7u32 1..2 0.0..=9.0");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "2.", "1e3", "2E-4", "3f64", "0.0", "9.0"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ints, ["0", "1_000", "0xFF", "0b10", "7u32", "1", "2"]);
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().any(|t| t.is_punct("..=")));
    }

    #[test]
    fn multichar_operators_fuse() {
        let toks = lex("a == b != c :: d -> e => f <= g >= h && i || j");
        for op in ["==", "!=", "::", "->", "=>", "<=", ">=", "&&", "||"] {
            assert!(toks.iter().any(|t| t.is_punct(op)), "missing {op}");
        }
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        let toks = lex("let r#match = 1;");
        assert!(toks.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("ab\n  cd /* x\n y */ ef");
        let cd = toks
            .iter()
            .find(|t| t.is_ident("cd"))
            .map(|t| (t.line, t.col));
        let ef = toks
            .iter()
            .find(|t| t.is_ident("ef"))
            .map(|t| (t.line, t.col));
        assert_eq!(cd, Some((2, 3)));
        assert_eq!(ef, Some((3, 7)));
    }
}
