//! Hand-parsed `lint_waivers.toml`: per-file-per-rule suppressions,
//! plus the cross-file pass configuration (pure roots, edge waivers).
//!
//! A waiver is a *debt note*, not an off switch: it must say **why** the
//! finding is acceptable (non-empty `justification`) and **when** the
//! debt comes due (`expires_pr` — the PR number by which the waiver must
//! be gone). `ldp-lint --check-waivers` fails on:
//!
//! * **stale** waivers — `expires_pr <=` the current PR (derived from
//!   `CHANGES.md`, overridable with `--pr`);
//! * **unused** waivers — entries that suppressed nothing this run,
//!   i.e. the finding was fixed but the waiver lingered.
//!
//! The format is the obvious TOML subset (parsed by hand — this crate is
//! dependency-free):
//!
//! ```toml
//! [[waiver]]
//! path = "crates/sim/src/scenario/run.rs"
//! rule = "D01"
//! justification = "iteration feeds a sort, so order cannot leak"
//! expires_pr = 9
//! ```
//!
//! The same file configures the P01 transitive-purity pass:
//!
//! ```toml
//! # A function whose whole call closure must stay pure.
//! [[pure_root]]
//! name = "shard_epoch_delta"
//!
//! # Suppress P01 across ONE call-graph edge (caller → callee). Same
//! # freshness contract as [[waiver]].
//! [[edge_waiver]]
//! caller = "run_experiment"
//! callee = "crate::telemetry::emit"
//! justification = "telemetry is fire-and-forget; output never feeds results"
//! expires_pr = 14
//! ```
//!
//! When the file declares no `[[pure_root]]` at all, the built-in
//! default root list ([`crate::passes::DEFAULT_PURE_ROOTS`]) applies.

use crate::rules::{Finding, RuleId};

/// One parsed waiver entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path the waiver applies to (forward slashes).
    pub path: String,
    /// The rule being waived.
    pub rule: RuleId,
    /// Why the finding is acceptable — required, non-empty.
    pub justification: String,
    /// The PR number by which this waiver must be removed.
    pub expires_pr: u32,
}

/// One `[[edge_waiver]]` entry: suppress P01 across a single call-graph
/// edge, with the same freshness contract as a [`Waiver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWaiver {
    /// Caller pattern: bare fn name or `::`-qualified path suffix.
    pub caller: String,
    /// Callee pattern: bare name, path suffix, or the opaque display path.
    pub callee: String,
    /// Why the edge is safe to ignore — required, non-empty.
    pub justification: String,
    /// The PR number by which this edge waiver must be removed.
    pub expires_pr: u32,
}

/// The fully parsed `lint_waivers.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Per-file-per-rule suppressions.
    pub waivers: Vec<Waiver>,
    /// P01 pure-root fn names/paths; empty means "use the defaults".
    pub pure_roots: Vec<String>,
    /// P01 per-edge suppressions.
    pub edge_waivers: Vec<EdgeWaiver>,
}

/// Parses just the `[[waiver]]` entries (the pre-P01 entry point, kept
/// for callers that only care about suppressions).
pub fn parse_waivers(content: &str) -> Result<Vec<Waiver>, (usize, String)> {
    parse_config(content).map(|c| c.waivers)
}

/// Which entry kind a `[[…]]` header opened.
enum Section {
    Waiver,
    PureRoot,
    EdgeWaiver,
}

#[derive(Default)]
struct Partial {
    header_line: usize,
    path: Option<String>,
    rule: Option<RuleId>,
    name: Option<String>,
    caller: Option<String>,
    callee: Option<String>,
    justification: Option<String>,
    expires_pr: Option<u32>,
}

/// Parses the whole config file content. Returns all entries or the
/// first error, as `(line number, message)`.
pub fn parse_config(content: &str) -> Result<LintConfig, (usize, String)> {
    let mut config = LintConfig::default();
    let mut current: Option<(Section, Partial)> = None;
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let header = match line {
            "[[waiver]]" => Some(Section::Waiver),
            "[[pure_root]]" => Some(Section::PureRoot),
            "[[edge_waiver]]" => Some(Section::EdgeWaiver),
            _ => None,
        };
        if let Some(section) = header {
            if let Some((s, p)) = current.take() {
                finish_entry(s, p, &mut config)?;
            }
            current = Some((
                section,
                Partial {
                    header_line: lineno,
                    ..Partial::default()
                },
            ));
            continue;
        }
        let Some((section, p)) = current.as_mut() else {
            return Err((
                lineno,
                format!("unexpected line outside a [[…]] entry: `{line}`"),
            ));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err((lineno, format!("expected `key = value`, got `{line}`")));
        };
        let (key, value) = (key.trim(), value.trim());
        let allowed = match section {
            Section::Waiver => ["path", "rule", "justification", "expires_pr"].contains(&key),
            Section::PureRoot => key == "name",
            Section::EdgeWaiver => {
                ["caller", "callee", "justification", "expires_pr"].contains(&key)
            }
        };
        if !allowed {
            return Err((lineno, format!("unknown key `{key}` for this entry kind")));
        }
        match key {
            "path" => p.path = Some(parse_string(value).map_err(|e| (lineno, e))?),
            "name" => p.name = Some(parse_string(value).map_err(|e| (lineno, e))?),
            "caller" => p.caller = Some(parse_string(value).map_err(|e| (lineno, e))?),
            "callee" => p.callee = Some(parse_string(value).map_err(|e| (lineno, e))?),
            "rule" => {
                let s = parse_string(value).map_err(|e| (lineno, e))?;
                let rule = RuleId::parse(&s).ok_or_else(|| {
                    let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.id()).collect();
                    (
                        lineno,
                        format!("unknown rule `{s}` (known: {})", known.join(", ")),
                    )
                })?;
                p.rule = Some(rule);
            }
            "justification" => {
                p.justification = Some(parse_string(value).map_err(|e| (lineno, e))?)
            }
            "expires_pr" => {
                let n: u32 = value.parse().map_err(|_| {
                    (
                        lineno,
                        format!("`expires_pr` must be an integer, got `{value}`"),
                    )
                })?;
                p.expires_pr = Some(n);
            }
            _ => unreachable!("key allow-listed above"),
        }
    }
    if let Some((s, p)) = current.take() {
        finish_entry(s, p, &mut config)?;
    }
    Ok(config)
}

fn finish_entry(
    section: Section,
    p: Partial,
    config: &mut LintConfig,
) -> Result<(), (usize, String)> {
    let at = p.header_line;
    let need_fresh = |justification: Option<String>,
                      expires_pr: Option<u32>|
     -> Result<(String, u32), (usize, String)> {
        let j = justification.ok_or((at, "entry is missing `justification`".to_string()))?;
        let e = expires_pr.ok_or((at, "entry is missing `expires_pr`".to_string()))?;
        if j.trim().is_empty() {
            return Err((at, "`justification` must be non-empty".to_string()));
        }
        if e == 0 {
            return Err((at, "`expires_pr` must be >= 1".to_string()));
        }
        Ok((j, e))
    };
    match section {
        Section::Waiver => {
            let path = p.path.ok_or((at, "waiver is missing `path`".to_string()))?;
            let rule = p.rule.ok_or((at, "waiver is missing `rule`".to_string()))?;
            if path.contains('\\') {
                return Err((at, "waiver `path` must use forward slashes".to_string()));
            }
            let (justification, expires_pr) = need_fresh(p.justification, p.expires_pr)?;
            config.waivers.push(Waiver {
                path,
                rule,
                justification,
                expires_pr,
            });
        }
        Section::PureRoot => {
            let name = p
                .name
                .ok_or((at, "pure_root is missing `name`".to_string()))?;
            if name.trim().is_empty() {
                return Err((at, "pure_root `name` must be non-empty".to_string()));
            }
            config.pure_roots.push(name);
        }
        Section::EdgeWaiver => {
            let caller = p
                .caller
                .ok_or((at, "edge_waiver is missing `caller`".to_string()))?;
            let callee = p
                .callee
                .ok_or((at, "edge_waiver is missing `callee`".to_string()))?;
            let (justification, expires_pr) = need_fresh(p.justification, p.expires_pr)?;
            config.edge_waivers.push(EdgeWaiver {
                caller,
                callee,
                justification,
                expires_pr,
            });
        }
    }
    Ok(())
}

/// Parses a double-quoted TOML basic string with `\"` / `\\` escapes.
fn parse_string(value: &str) -> Result<String, String> {
    let chars: Vec<char> = value.chars().collect();
    if chars.len() < 2 || chars[0] != '"' || chars[chars.len() - 1] != '"' {
        return Err(format!("expected a double-quoted string, got `{value}`"));
    }
    let mut out = String::new();
    let mut i = 1;
    while i < chars.len() - 1 {
        if chars[i] == '\\' && i + 1 < chars.len() - 1 {
            out.push(chars[i + 1]);
            i += 2;
        } else if chars[i] == '"' {
            return Err(format!("unescaped quote inside string `{value}`"));
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    Ok(out)
}

/// Renders waivers back to the canonical file format (the round-trip
/// partner of [`parse_waivers`], used by tests and `--bless`-free
/// tooling that wants to emit a template).
pub fn render_waivers(waivers: &[Waiver]) -> String {
    let mut out = String::new();
    for w in waivers {
        out.push_str("[[waiver]]\n");
        out.push_str(&format!("path = \"{}\"\n", escape(&w.path)));
        out.push_str(&format!("rule = \"{}\"\n", w.rule.id()));
        out.push_str(&format!(
            "justification = \"{}\"\n",
            escape(&w.justification)
        ));
        out.push_str(&format!("expires_pr = {}\n\n", w.expires_pr));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Splits findings into kept (unwaived) and suppressed, recording which
/// waiver indices fired so `--check-waivers` can spot unused entries.
pub fn apply_waivers(
    findings: Vec<Finding>,
    waivers: &[Waiver],
) -> (Vec<Finding>, Vec<(Finding, usize)>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        match waivers
            .iter()
            .position(|w| w.rule == f.rule && w.path == f.path)
        {
            Some(i) => suppressed.push((f, i)),
            None => kept.push(f),
        }
    }
    (kept, suppressed)
}

/// Validates waiver freshness: every entry must have suppressed at least
/// one finding this run, and must not have expired. Returns one message
/// per violation (empty = clean).
pub fn check_waivers(
    waivers: &[Waiver],
    suppressed: &[(Finding, usize)],
    current_pr: Option<u32>,
) -> Vec<String> {
    let mut errors = Vec::new();
    for (i, w) in waivers.iter().enumerate() {
        let used = suppressed.iter().any(|(_, idx)| *idx == i);
        if !used {
            errors.push(format!(
                "unused waiver: {} [{}] suppressed nothing — the finding was fixed, remove \
                 the waiver",
                w.path,
                w.rule.id()
            ));
        }
        if let Some(pr) = current_pr {
            if w.expires_pr <= pr {
                errors.push(format!(
                    "stale waiver: {} [{}] expired at PR {} (current PR is {}) — fix the \
                     finding or renegotiate the expiry",
                    w.path,
                    w.rule.id(),
                    w.expires_pr,
                    pr
                ));
            }
        }
    }
    errors
}

/// Validates edge-waiver freshness, mirroring [`check_waivers`]:
/// `used[i]` says whether entry `i` suppressed a P01 edge this run.
pub fn check_edge_waivers(
    edge_waivers: &[EdgeWaiver],
    used: &[bool],
    current_pr: Option<u32>,
) -> Vec<String> {
    let mut errors = Vec::new();
    for (i, w) in edge_waivers.iter().enumerate() {
        if !used.get(i).copied().unwrap_or(false) {
            errors.push(format!(
                "unused edge_waiver: {} -> {} suppressed nothing — the edge is gone, remove \
                 the waiver",
                w.caller, w.callee
            ));
        }
        if let Some(pr) = current_pr {
            if w.expires_pr <= pr {
                errors.push(format!(
                    "stale edge_waiver: {} -> {} expired at PR {} (current PR is {}) — fix \
                     the edge or renegotiate the expiry",
                    w.caller, w.callee, w.expires_pr, pr
                ));
            }
        }
    }
    errors
}

/// Derives the current PR number from `CHANGES.md`: one line per landed
/// PR, each starting `PR <n>:`; the PR in flight is `max(n) + 1`.
pub fn current_pr_from_changes(changes_md: &str) -> Option<u32> {
    let mut max_pr: Option<u32> = None;
    for line in changes_md.lines() {
        let Some(rest) = line.strip_prefix("PR ") else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() || !rest[digits.len()..].starts_with(':') {
            continue;
        }
        if let Ok(n) = digits.parse::<u32>() {
            max_pr = Some(max_pr.map_or(n, |m| m.max(n)));
        }
    }
    max_pr.map(|m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiver(path: &str, rule: RuleId, expires: u32) -> Waiver {
        Waiver {
            path: path.to_string(),
            rule,
            justification: "because reasons, documented".to_string(),
            expires_pr: expires,
        }
    }

    fn finding(path: &str, rule: RuleId) -> Finding {
        Finding {
            path: path.to_string(),
            line: 1,
            col: 1,
            rule,
            message: "m".to_string(),
            source_line: "s".to_string(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let ws = vec![
            waiver("crates/a/src/x.rs", RuleId::D03, 9),
            Waiver {
                path: "src/lib.rs".to_string(),
                rule: RuleId::H02,
                justification: "quote \" and back\\slash".to_string(),
                expires_pr: 12,
            },
        ];
        let rendered = render_waivers(&ws);
        assert_eq!(parse_waivers(&rendered).expect("round-trip parses"), ws);
    }

    #[test]
    fn empty_and_comment_only_files_parse_to_no_waivers() {
        assert_eq!(parse_waivers("").expect("empty ok"), vec![]);
        assert_eq!(
            parse_waivers("# schema docs only\n\n# more\n").expect("comments ok"),
            vec![]
        );
    }

    #[test]
    fn missing_fields_and_bad_values_are_rejected() {
        let missing = "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\nexpires_pr = 9\n";
        assert!(parse_waivers(missing).is_err(), "missing justification");
        let blank =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\njustification = \"  \"\nexpires_pr = 9\n";
        assert!(parse_waivers(blank).is_err(), "blank justification");
        let badrule =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D99\"\njustification = \"x\"\nexpires_pr = 9\n";
        let err = parse_waivers(badrule).expect_err("unknown rule");
        assert!(err.1.contains("D01"), "error lists known rules: {}", err.1);
        let badpr =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\njustification = \"x\"\nexpires_pr = zero\n";
        assert!(parse_waivers(badpr).is_err(), "non-integer expires_pr");
        let stray = "path = \"a.rs\"\n";
        assert!(parse_waivers(stray).is_err(), "key outside entry");
        let unknown =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\njustification = \"x\"\nexpires_pr = 9\nnote = \"y\"\n";
        assert!(parse_waivers(unknown).is_err(), "unknown key");
    }

    #[test]
    fn waivers_suppress_matching_findings_only() {
        let ws = vec![waiver("a.rs", RuleId::D03, 99)];
        let (kept, suppressed) = apply_waivers(
            vec![
                finding("a.rs", RuleId::D03),
                finding("a.rs", RuleId::D04),
                finding("b.rs", RuleId::D03),
            ],
            &ws,
        );
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn unused_and_stale_waivers_fail_the_check() {
        let ws = vec![
            waiver("a.rs", RuleId::D03, 7),
            waiver("b.rs", RuleId::D04, 99),
        ];
        // Only the second waiver is used; first is both unused and stale at PR 7.
        let suppressed = vec![(finding("b.rs", RuleId::D04), 1usize)];
        let errors = check_waivers(&ws, &suppressed, Some(7));
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("unused")));
        assert!(errors.iter().any(|e| e.contains("stale")));
        // Fresh + used ⇒ clean.
        assert!(check_waivers(&ws[1..], &[(finding("b.rs", RuleId::D04), 0)], Some(7)).is_empty());
    }

    #[test]
    fn current_pr_derives_from_changes_md() {
        let changes = "PR 1: a\nPR 2: b\nnot a pr line\nPR 10: c\n";
        assert_eq!(current_pr_from_changes(changes), Some(11));
        assert_eq!(current_pr_from_changes("nothing here"), None);
        assert_eq!(current_pr_from_changes("PR x: nope\nPR 3 no-colon"), None);
    }

    #[test]
    fn current_pr_is_newline_shape_invariant() {
        // The derivation must depend only on the `PR <n>:` prefixes, not
        // on the file's trailing-newline or blank-line shape — an
        // off-by-one here silently shifts every waiver expiry.
        let with_trailing = "PR 1: a\nPR 2: b\n";
        let without_trailing = "PR 1: a\nPR 2: b";
        let with_blanks = "\nPR 1: a\n\n\nPR 2: b\n\n";
        let crlf = "PR 1: a\r\nPR 2: b\r\n";
        for (tag, content) in [
            ("trailing newline", with_trailing),
            ("no trailing newline", without_trailing),
            ("interior blank lines", with_blanks),
            ("CRLF endings", crlf),
        ] {
            assert_eq!(
                current_pr_from_changes(content),
                Some(3),
                "shape `{tag}` must still derive PR 3"
            );
        }
        // A lone header with no PR lines at all, in both shapes.
        assert_eq!(current_pr_from_changes("# changes\n"), None);
        assert_eq!(current_pr_from_changes("# changes"), None);
    }

    #[test]
    fn pure_roots_and_edge_waivers_parse() {
        let content = "\
            [[pure_root]]\n\
            name = \"shard_epoch_delta\"\n\
            \n\
            [[edge_waiver]]\n\
            caller = \"run_experiment\"\n\
            callee = \"crate::telemetry::emit\"\n\
            justification = \"telemetry output never feeds results\"\n\
            expires_pr = 14\n\
            \n\
            [[waiver]]\n\
            path = \"crates/a/src/x.rs\"\n\
            rule = \"D01\"\n\
            justification = \"sorted downstream\"\n\
            expires_pr = 12\n";
        let config = parse_config(content).expect("mixed config parses");
        assert_eq!(config.pure_roots, ["shard_epoch_delta"]);
        assert_eq!(config.edge_waivers.len(), 1);
        assert_eq!(config.edge_waivers[0].caller, "run_experiment");
        assert_eq!(config.waivers.len(), 1);
    }

    #[test]
    fn config_sections_reject_wrong_and_missing_keys() {
        let wrong_key = "[[pure_root]]\npath = \"x\"\n";
        assert!(parse_config(wrong_key).is_err(), "pure_root rejects `path`");
        let blank_root = "[[pure_root]]\nname = \" \"\n";
        assert!(parse_config(blank_root).is_err(), "blank root name");
        let no_expiry = "[[edge_waiver]]\ncaller = \"a\"\ncallee = \"b\"\njustification = \"j\"\n";
        assert!(parse_config(no_expiry).is_err(), "edge waiver needs expiry");
        let no_callee = "[[edge_waiver]]\ncaller = \"a\"\njustification = \"j\"\nexpires_pr = 9\n";
        assert!(parse_config(no_callee).is_err(), "edge waiver needs callee");
    }

    #[test]
    fn edge_waiver_freshness_mirrors_waiver_freshness() {
        let ew = vec![
            EdgeWaiver {
                caller: "a".to_string(),
                callee: "b".to_string(),
                justification: "j".to_string(),
                expires_pr: 7,
            },
            EdgeWaiver {
                caller: "c".to_string(),
                callee: "d".to_string(),
                justification: "j".to_string(),
                expires_pr: 99,
            },
        ];
        // First: stale (expired at 7) and used; second: fresh but unused.
        let errors = check_edge_waivers(&ew, &[true, false], Some(7));
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("stale")));
        assert!(errors.iter().any(|e| e.contains("unused")));
        assert!(check_edge_waivers(&ew[1..], &[true], Some(7)).is_empty());
    }
}
