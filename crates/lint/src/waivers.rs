//! Hand-parsed `lint_waivers.toml`: per-file-per-rule suppressions.
//!
//! A waiver is a *debt note*, not an off switch: it must say **why** the
//! finding is acceptable (non-empty `justification`) and **when** the
//! debt comes due (`expires_pr` — the PR number by which the waiver must
//! be gone). `ldp-lint --check-waivers` fails on:
//!
//! * **stale** waivers — `expires_pr <=` the current PR (derived from
//!   `CHANGES.md`, overridable with `--pr`);
//! * **unused** waivers — entries that suppressed nothing this run,
//!   i.e. the finding was fixed but the waiver lingered.
//!
//! The format is the obvious TOML subset (parsed by hand — this crate is
//! dependency-free):
//!
//! ```toml
//! [[waiver]]
//! path = "crates/sim/src/scenario/run.rs"
//! rule = "D01"
//! justification = "iteration feeds a sort, so order cannot leak"
//! expires_pr = 9
//! ```

use crate::rules::{Finding, RuleId};

/// One parsed waiver entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path the waiver applies to (forward slashes).
    pub path: String,
    /// The rule being waived.
    pub rule: RuleId,
    /// Why the finding is acceptable — required, non-empty.
    pub justification: String,
    /// The PR number by which this waiver must be removed.
    pub expires_pr: u32,
}

/// Parses the waiver file content. Returns all entries or the first
/// error, as `(line number, message)`.
pub fn parse_waivers(content: &str) -> Result<Vec<Waiver>, (usize, String)> {
    struct Partial {
        header_line: usize,
        path: Option<String>,
        rule: Option<RuleId>,
        justification: Option<String>,
        expires_pr: Option<u32>,
    }
    let mut entries: Vec<Waiver> = Vec::new();
    let mut current: Option<Partial> = None;
    let finish = |p: Partial| -> Result<Waiver, (usize, String)> {
        let at = p.header_line;
        let path = p.path.ok_or((at, "waiver is missing `path`".to_string()))?;
        let rule = p.rule.ok_or((at, "waiver is missing `rule`".to_string()))?;
        let justification = p
            .justification
            .ok_or((at, "waiver is missing `justification`".to_string()))?;
        let expires_pr = p
            .expires_pr
            .ok_or((at, "waiver is missing `expires_pr`".to_string()))?;
        if justification.trim().is_empty() {
            return Err((at, "waiver `justification` must be non-empty".to_string()));
        }
        if expires_pr == 0 {
            return Err((at, "waiver `expires_pr` must be >= 1".to_string()));
        }
        if path.contains('\\') {
            return Err((at, "waiver `path` must use forward slashes".to_string()));
        }
        Ok(Waiver {
            path,
            rule,
            justification,
            expires_pr,
        })
    };
    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(p) = current.take() {
                entries.push(finish(p)?);
            }
            current = Some(Partial {
                header_line: lineno,
                path: None,
                rule: None,
                justification: None,
                expires_pr: None,
            });
            continue;
        }
        let Some(p) = current.as_mut() else {
            return Err((
                lineno,
                format!("unexpected line outside a [[waiver]] entry: `{line}`"),
            ));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err((lineno, format!("expected `key = value`, got `{line}`")));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "path" => p.path = Some(parse_string(value).map_err(|e| (lineno, e))?),
            "rule" => {
                let s = parse_string(value).map_err(|e| (lineno, e))?;
                let rule = RuleId::parse(&s).ok_or_else(|| {
                    let known: Vec<&str> = RuleId::ALL.iter().map(|r| r.id()).collect();
                    (
                        lineno,
                        format!("unknown rule `{s}` (known: {})", known.join(", ")),
                    )
                })?;
                p.rule = Some(rule);
            }
            "justification" => {
                p.justification = Some(parse_string(value).map_err(|e| (lineno, e))?)
            }
            "expires_pr" => {
                let n: u32 = value.parse().map_err(|_| {
                    (
                        lineno,
                        format!("`expires_pr` must be an integer, got `{value}`"),
                    )
                })?;
                p.expires_pr = Some(n);
            }
            other => return Err((lineno, format!("unknown waiver key `{other}`"))),
        }
    }
    if let Some(p) = current.take() {
        entries.push(finish(p)?);
    }
    Ok(entries)
}

/// Parses a double-quoted TOML basic string with `\"` / `\\` escapes.
fn parse_string(value: &str) -> Result<String, String> {
    let chars: Vec<char> = value.chars().collect();
    if chars.len() < 2 || chars[0] != '"' || chars[chars.len() - 1] != '"' {
        return Err(format!("expected a double-quoted string, got `{value}`"));
    }
    let mut out = String::new();
    let mut i = 1;
    while i < chars.len() - 1 {
        if chars[i] == '\\' && i + 1 < chars.len() - 1 {
            out.push(chars[i + 1]);
            i += 2;
        } else if chars[i] == '"' {
            return Err(format!("unescaped quote inside string `{value}`"));
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    Ok(out)
}

/// Renders waivers back to the canonical file format (the round-trip
/// partner of [`parse_waivers`], used by tests and `--bless`-free
/// tooling that wants to emit a template).
pub fn render_waivers(waivers: &[Waiver]) -> String {
    let mut out = String::new();
    for w in waivers {
        out.push_str("[[waiver]]\n");
        out.push_str(&format!("path = \"{}\"\n", escape(&w.path)));
        out.push_str(&format!("rule = \"{}\"\n", w.rule.id()));
        out.push_str(&format!(
            "justification = \"{}\"\n",
            escape(&w.justification)
        ));
        out.push_str(&format!("expires_pr = {}\n\n", w.expires_pr));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Splits findings into kept (unwaived) and suppressed, recording which
/// waiver indices fired so `--check-waivers` can spot unused entries.
pub fn apply_waivers(
    findings: Vec<Finding>,
    waivers: &[Waiver],
) -> (Vec<Finding>, Vec<(Finding, usize)>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        match waivers
            .iter()
            .position(|w| w.rule == f.rule && w.path == f.path)
        {
            Some(i) => suppressed.push((f, i)),
            None => kept.push(f),
        }
    }
    (kept, suppressed)
}

/// Validates waiver freshness: every entry must have suppressed at least
/// one finding this run, and must not have expired. Returns one message
/// per violation (empty = clean).
pub fn check_waivers(
    waivers: &[Waiver],
    suppressed: &[(Finding, usize)],
    current_pr: Option<u32>,
) -> Vec<String> {
    let mut errors = Vec::new();
    for (i, w) in waivers.iter().enumerate() {
        let used = suppressed.iter().any(|(_, idx)| *idx == i);
        if !used {
            errors.push(format!(
                "unused waiver: {} [{}] suppressed nothing — the finding was fixed, remove \
                 the waiver",
                w.path,
                w.rule.id()
            ));
        }
        if let Some(pr) = current_pr {
            if w.expires_pr <= pr {
                errors.push(format!(
                    "stale waiver: {} [{}] expired at PR {} (current PR is {}) — fix the \
                     finding or renegotiate the expiry",
                    w.path,
                    w.rule.id(),
                    w.expires_pr,
                    pr
                ));
            }
        }
    }
    errors
}

/// Derives the current PR number from `CHANGES.md`: one line per landed
/// PR, each starting `PR <n>:`; the PR in flight is `max(n) + 1`.
pub fn current_pr_from_changes(changes_md: &str) -> Option<u32> {
    let mut max_pr: Option<u32> = None;
    for line in changes_md.lines() {
        let Some(rest) = line.strip_prefix("PR ") else {
            continue;
        };
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() || !rest[digits.len()..].starts_with(':') {
            continue;
        }
        if let Ok(n) = digits.parse::<u32>() {
            max_pr = Some(max_pr.map_or(n, |m| m.max(n)));
        }
    }
    max_pr.map(|m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiver(path: &str, rule: RuleId, expires: u32) -> Waiver {
        Waiver {
            path: path.to_string(),
            rule,
            justification: "because reasons, documented".to_string(),
            expires_pr: expires,
        }
    }

    fn finding(path: &str, rule: RuleId) -> Finding {
        Finding {
            path: path.to_string(),
            line: 1,
            col: 1,
            rule,
            message: "m".to_string(),
            source_line: "s".to_string(),
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let ws = vec![
            waiver("crates/a/src/x.rs", RuleId::D03, 9),
            Waiver {
                path: "src/lib.rs".to_string(),
                rule: RuleId::H02,
                justification: "quote \" and back\\slash".to_string(),
                expires_pr: 12,
            },
        ];
        let rendered = render_waivers(&ws);
        assert_eq!(parse_waivers(&rendered).expect("round-trip parses"), ws);
    }

    #[test]
    fn empty_and_comment_only_files_parse_to_no_waivers() {
        assert_eq!(parse_waivers("").expect("empty ok"), vec![]);
        assert_eq!(
            parse_waivers("# schema docs only\n\n# more\n").expect("comments ok"),
            vec![]
        );
    }

    #[test]
    fn missing_fields_and_bad_values_are_rejected() {
        let missing = "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\nexpires_pr = 9\n";
        assert!(parse_waivers(missing).is_err(), "missing justification");
        let blank =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\njustification = \"  \"\nexpires_pr = 9\n";
        assert!(parse_waivers(blank).is_err(), "blank justification");
        let badrule =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D99\"\njustification = \"x\"\nexpires_pr = 9\n";
        let err = parse_waivers(badrule).expect_err("unknown rule");
        assert!(err.1.contains("D01"), "error lists known rules: {}", err.1);
        let badpr =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\njustification = \"x\"\nexpires_pr = zero\n";
        assert!(parse_waivers(badpr).is_err(), "non-integer expires_pr");
        let stray = "path = \"a.rs\"\n";
        assert!(parse_waivers(stray).is_err(), "key outside entry");
        let unknown =
            "[[waiver]]\npath = \"a.rs\"\nrule = \"D01\"\njustification = \"x\"\nexpires_pr = 9\nnote = \"y\"\n";
        assert!(parse_waivers(unknown).is_err(), "unknown key");
    }

    #[test]
    fn waivers_suppress_matching_findings_only() {
        let ws = vec![waiver("a.rs", RuleId::D03, 99)];
        let (kept, suppressed) = apply_waivers(
            vec![
                finding("a.rs", RuleId::D03),
                finding("a.rs", RuleId::D04),
                finding("b.rs", RuleId::D03),
            ],
            &ws,
        );
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn unused_and_stale_waivers_fail_the_check() {
        let ws = vec![
            waiver("a.rs", RuleId::D03, 7),
            waiver("b.rs", RuleId::D04, 99),
        ];
        // Only the second waiver is used; first is both unused and stale at PR 7.
        let suppressed = vec![(finding("b.rs", RuleId::D04), 1usize)];
        let errors = check_waivers(&ws, &suppressed, Some(7));
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("unused")));
        assert!(errors.iter().any(|e| e.contains("stale")));
        // Fresh + used ⇒ clean.
        assert!(check_waivers(&ws[1..], &[(finding("b.rs", RuleId::D04), 0)], Some(7)).is_empty());
    }

    #[test]
    fn current_pr_derives_from_changes_md() {
        let changes = "PR 1: a\nPR 2: b\nnot a pr line\nPR 10: c\n";
        assert_eq!(current_pr_from_changes(changes), Some(11));
        assert_eq!(current_pr_from_changes("nothing here"), None);
        assert_eq!(current_pr_from_changes("PR x: nope\nPR 3 no-colon"), None);
    }
}
