//! Golden-file drift check: a checked-in manifest of content hashes over
//! every blessed artifact, so an accidental re-bless (or a stray editor
//! touching a golden) fails CI loudly instead of silently moving the
//! ground truth.
//!
//! The manifest lives at the workspace root ([`GOLDEN_MANIFEST`]) and
//! covers the scenario goldens (`tests/golden/*.json`) and the perf
//! trajectory (`crates/bench/trajectory/*.json`). Each line is
//! `<16-hex fnv1a64>  <workspace-relative path>`, sorted by path, so
//! diffs of the manifest read as "which goldens changed". Re-blessing is
//! explicit: `ldp-lint --bless-goldens` regenerates the manifest, and the
//! diff lands in review next to the golden change that caused it.
//!
//! The hash is a hand-rolled FNV-1a 64 — the lint crate stays
//! dependency-free, and drift detection needs speed and stability, not
//! collision resistance against an adversary who can already edit the
//! manifest itself.

use std::path::Path;

use crate::LintError;

/// Workspace-relative path of the golden manifest.
pub const GOLDEN_MANIFEST: &str = "golden.manifest";

/// Workspace-relative directories whose `*.json` files the manifest
/// covers.
pub const GOLDEN_DIRS: [&str; 2] = ["crates/bench/trajectory", "tests/golden"];

/// FNV-1a 64 over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The blessed `*.json` files under [`GOLDEN_DIRS`], as sorted
/// workspace-relative paths (always `/`-separated, so the manifest is
/// platform-stable).
pub fn golden_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut files = Vec::new();
    for dir in GOLDEN_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&abs).map_err(|e| LintError::Io(e.to_string()))? {
            let entry = entry.map_err(|e| LintError::Io(e.to_string()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") && entry.path().is_file() {
                files.push(format!("{dir}/{name}"));
            }
        }
    }
    files.sort();
    Ok(files)
}

fn hash_line(root: &Path, rel: &str) -> Result<String, LintError> {
    let bytes = std::fs::read(root.join(rel)).map_err(|e| LintError::Io(format!("{rel}: {e}")))?;
    Ok(format!("{:016x}  {rel}", fnv1a64(&bytes)))
}

/// Renders the manifest content for the current tree.
///
/// # Errors
/// [`LintError::Io`] if a golden directory or file cannot be read.
pub fn render_manifest(root: &Path) -> Result<String, LintError> {
    let mut out = String::new();
    for rel in golden_files(root)? {
        out.push_str(&hash_line(root, &rel)?);
        out.push('\n');
    }
    Ok(out)
}

/// Writes the manifest for the current tree to
/// `<root>/`[`GOLDEN_MANIFEST`], returning the number of files covered.
///
/// # Errors
/// [`LintError::Io`] on read or write failures.
pub fn bless_goldens(root: &Path) -> Result<usize, LintError> {
    let manifest = render_manifest(root)?;
    // Local temp-file + rename (the lint crate deliberately cannot use
    // ldp_common::write_atomic): a crash mid-bless must not leave a torn
    // manifest that every later `--check-goldens` run trusts.
    let tmp = root.join(format!(".{GOLDEN_MANIFEST}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, &manifest)
        .map_err(|e| LintError::Io(format!("{GOLDEN_MANIFEST}: {e}")))?;
    if let Err(e) = std::fs::rename(&tmp, root.join(GOLDEN_MANIFEST)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(LintError::Io(format!("{GOLDEN_MANIFEST}: {e}")));
    }
    Ok(manifest.lines().count())
}

/// Verifies the tree against the checked-in manifest. Returns one
/// human-readable error string per drift: a golden whose hash changed, a
/// manifest entry whose file is gone (stale), a golden the manifest does
/// not cover, or a missing/unparseable manifest. An empty vector means
/// everything matches.
///
/// # Errors
/// [`LintError::Io`] only for filesystem failures *other than* the
/// manifest being absent (that is a finding, not an I/O error).
pub fn check_goldens(root: &Path) -> Result<Vec<String>, LintError> {
    let manifest_path = root.join(GOLDEN_MANIFEST);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(vec![format!(
                "{GOLDEN_MANIFEST} is missing — generate it with `ldp-lint --bless-goldens`"
            )]);
        }
        Err(e) => return Err(LintError::Io(format!("{GOLDEN_MANIFEST}: {e}"))),
    };

    let mut errors = Vec::new();
    let mut listed: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once("  ") {
            Some((hash, rel)) if hash.len() == 16 => {
                listed.push((hash.to_string(), rel.to_string()));
            }
            _ => errors.push(format!(
                "{GOLDEN_MANIFEST}:{}: malformed line `{line}` (expected `<16-hex>  <path>`)",
                lineno + 1
            )),
        }
    }

    let on_disk = golden_files(root)?;
    for (hash, rel) in &listed {
        if !on_disk.contains(rel) {
            errors.push(format!(
                "{rel}: listed in {GOLDEN_MANIFEST} but missing from the tree — \
                 stale entry; re-bless with `ldp-lint --bless-goldens`"
            ));
            continue;
        }
        let actual = hash_line(root, rel)?;
        let actual_hash = &actual[..16];
        if actual_hash != hash {
            errors.push(format!(
                "{rel}: content hash {actual_hash} != blessed {hash} — golden drifted; \
                 if the change is intentional, re-bless with `ldp-lint --bless-goldens`"
            ));
        }
    }
    for rel in &on_disk {
        if !listed.iter().any(|(_, r)| r == rel) {
            errors.push(format!(
                "{rel}: golden on disk but not covered by {GOLDEN_MANIFEST} — \
                 re-bless with `ldp-lint --bless-goldens`"
            ));
        }
    }
    Ok(errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    fn scaffold(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("ldp_lint_goldens_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        for dir in GOLDEN_DIRS {
            std::fs::create_dir_all(root.join(dir)).unwrap();
        }
        std::fs::write(root.join("tests/golden/a.json"), b"{\"v\": 1}\n").unwrap();
        std::fs::write(
            root.join("crates/bench/trajectory/BENCH_x.json"),
            b"{\"cases\": []}\n",
        )
        .unwrap();
        root
    }

    #[test]
    fn bless_then_check_roundtrips() {
        let root = scaffold("roundtrip");
        assert_eq!(bless_goldens(&root).unwrap(), 2);
        assert_eq!(check_goldens(&root).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn missing_manifest_is_a_finding() {
        let root = scaffold("missing");
        let errors = check_goldens(&root).unwrap();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("--bless-goldens"), "{}", errors[0]);
    }

    #[test]
    fn drift_stale_and_uncovered_are_all_reported() {
        let root = scaffold("drift");
        bless_goldens(&root).unwrap();

        // Drift: edit a blessed golden.
        std::fs::write(root.join("tests/golden/a.json"), b"{\"v\": 2}\n").unwrap();
        // Uncovered: a new golden the manifest has never seen.
        std::fs::write(root.join("tests/golden/b.json"), b"{}\n").unwrap();

        let errors = check_goldens(&root).unwrap();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors
            .iter()
            .any(|e| e.contains("a.json") && e.contains("drifted")));
        assert!(errors
            .iter()
            .any(|e| e.contains("b.json") && e.contains("not covered")));

        // Stale: remove a blessed golden entirely.
        std::fs::remove_file(root.join("crates/bench/trajectory/BENCH_x.json")).unwrap();
        let errors = check_goldens(&root).unwrap();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("BENCH_x.json") && e.contains("stale")),
            "{errors:?}"
        );

        // Re-blessing clears everything.
        std::fs::write(root.join("tests/golden/a.json"), b"{\"v\": 2}\n").unwrap();
        bless_goldens(&root).unwrap();
        assert_eq!(check_goldens(&root).unwrap(), Vec::<String>::new());
    }
}
