//! Workspace symbol table: every `fn` item, `use` alias, and
//! interior-mutable `static`, with enough module-path context to resolve
//! cross-file calls.
//!
//! Built purely from the lexer output plus the [`crate::tree`] nesting
//! map — no rustc, no macros expanded. The table records, per file:
//!
//! * the file's **module path** (crate ident + `mod.rs`/file-layout
//!   segments + inline `mod name { … }` blocks);
//! * every **`fn` item** with its name, enclosing `impl`/`trait` type,
//!   parameter names + type tokens, and body token range;
//! * every **`use` declaration**, flattened to `(alias, full path)`
//!   pairs (groups and `as` renames resolved, globs recorded);
//! * every **interior-mutable `static`** (`static mut`, or a type
//!   mentioning `Atomic*`/`Mutex`/`RefCell`/… ) — the P01 purity pass
//!   treats reads of these as ambient state.
//!
//! The crate ident for `crates/<dir>/…` comes from a caller-provided
//! map (parsed from each crate's `Cargo.toml` by [`crate::lint_workspace`],
//! since lib names like `crates/core → ldprecover` are irregular); files
//! outside the map fall back to the directory name with `-` → `_`.

use crate::lexer::{Tok, TokKind};
use crate::rules::FileClass;
use crate::tree::delim_matches;

/// One lexed source file plus its nesting map — the unit the cross-file
/// stage consumes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Classification (bench/bin/test/example/…), same as the local rules.
    pub class: FileClass,
    /// Lexed tokens with `in_test` already marked.
    pub toks: Vec<Tok>,
    /// Delimiter match map from [`delim_matches`].
    pub matches: Vec<Option<usize>>,
}

impl SourceFile {
    /// Lexes and classifies one file (test regions marked).
    pub fn new(rel_path: &str, src: &str) -> SourceFile {
        let class = FileClass::classify(rel_path);
        let mut toks = crate::lexer::lex(src);
        crate::rules::mark_test_regions(&mut toks);
        let matches = delim_matches(&toks);
        SourceFile {
            rel_path: rel_path.to_string(),
            class,
            toks,
            matches,
        }
    }
}

/// One `fn` parameter: the bound name and its type tokens (space-joined).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name; empty for destructuring patterns the builder skips.
    pub name: String,
    /// The type ascription, tokens space-joined (`& mut R`).
    pub ty: String,
}

impl Param {
    /// Heuristic: does this parameter carry an RNG? (name contains
    /// `rng`, or the type tokens mention `Rng`.)
    pub fn is_rngish(&self) -> bool {
        self.name.to_ascii_lowercase().contains("rng") || self.ty.contains("Rng")
    }
}

/// One `fn` item in the workspace.
#[derive(Debug)]
pub struct FnSym {
    /// The bare function name.
    pub name: String,
    /// Module path: crate ident, then file-layout / inline-mod segments.
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, when this is a method.
    pub self_ty: Option<String>,
    /// Index into the workspace's file list.
    pub file: usize,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// Body token range `(open_brace, close_brace)`; `None` for
    /// bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Parsed parameters (simple `name: Type` ascriptions only).
    pub params: Vec<Param>,
    /// Test-gated (token-level `in_test`, or the file is a test file).
    pub is_test: bool,
}

impl FnSym {
    /// Display path: `crate::mod::Type::name`.
    pub fn qual(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(ty) = &self.self_ty {
            parts.push(ty);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// Per-file symbol info beyond the raw tokens.
#[derive(Debug, Default)]
pub struct FileSyms {
    /// Crate ident (`ldp_common`, …) this file belongs to.
    pub crate_ident: String,
    /// File-layout module path segments (without the crate ident).
    pub mod_base: Vec<String>,
    /// Flattened `use` aliases: local name → full path segments.
    pub uses: Vec<(String, Vec<String>)>,
    /// Glob imports: the path prefixes of `use …::*;`.
    pub globs: Vec<Vec<String>>,
    /// Indices into [`Workspace::fns`] declared in this file.
    pub fns: Vec<usize>,
}

/// The whole-workspace symbol table.
#[derive(Debug)]
pub struct Workspace {
    /// The source files, index-aligned with [`FnSym::file`].
    pub files: Vec<SourceFile>,
    /// Per-file symbol info, index-aligned with `files`.
    pub syms: Vec<FileSyms>,
    /// Every `fn` item found.
    pub fns: Vec<FnSym>,
    /// Names of interior-mutable statics (`static mut`, atomics, locks,
    /// cells) declared anywhere in the workspace.
    pub mut_statics: Vec<String>,
    /// Every crate ident seen (for "is this path workspace-internal?").
    pub crate_idents: Vec<String>,
}

/// Type names whose presence in a `static`'s type marks it
/// interior-mutable (ambient state for the purity pass).
const INTERIOR_MUTABLE: [&str; 16] = [
    "AtomicBool",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
    "Cell",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RwLock",
];

impl Workspace {
    /// Builds the table over pre-lexed files. `crate_idents_by_dir` maps
    /// a `crates/<dir>` directory name to its lib ident; missing entries
    /// fall back to the directory name (`-` → `_`), and files outside
    /// `crates/` (root `src/`, `tests/`, `examples/`) get `root_ident`.
    pub fn build(
        files: Vec<SourceFile>,
        crate_idents_by_dir: &[(String, String)],
        root_ident: &str,
    ) -> Workspace {
        let mut syms = Vec::with_capacity(files.len());
        let mut fns = Vec::new();
        let mut mut_statics = Vec::new();
        let mut crate_idents: Vec<String> = vec![root_ident.to_string()];
        for (fi, file) in files.iter().enumerate() {
            let (crate_ident, mod_base) =
                file_module_path(&file.rel_path, crate_idents_by_dir, root_ident);
            if !crate_idents.contains(&crate_ident) {
                crate_idents.push(crate_ident.clone());
            }
            let mut fs = FileSyms {
                crate_ident,
                mod_base,
                ..FileSyms::default()
            };
            scan_file(file, fi, &mut fs, &mut fns, &mut mut_statics);
            syms.push(fs);
        }
        mut_statics.sort();
        mut_statics.dedup();
        crate_idents.sort();
        crate_idents.dedup();
        Workspace {
            files,
            syms,
            fns,
            mut_statics,
            crate_idents,
        }
    }
}

/// Derives `(crate ident, module base path)` from a file's location.
fn file_module_path(
    rel_path: &str,
    crate_idents_by_dir: &[(String, String)],
    root_ident: &str,
) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (ident, in_crate) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        let dir = parts[1];
        let ident = crate_idents_by_dir
            .iter()
            .find(|(d, _)| d == dir)
            .map(|(_, i)| i.clone())
            .unwrap_or_else(|| dir.replace('-', "_"));
        (ident, &parts[2..])
    } else {
        (root_ident.to_string(), &parts[..])
    };
    // Only `src/` contributes module structure; `tests/`, `examples/`,
    // and `src/bin/` files are each their own crate root.
    let mut mods: Vec<String> = Vec::new();
    if in_crate.first() == Some(&"src") && !in_crate.contains(&"bin") {
        for (i, seg) in in_crate.iter().enumerate().skip(1) {
            let is_last = i == in_crate.len() - 1;
            if is_last {
                let stem = seg.trim_end_matches(".rs");
                if stem != "lib" && stem != "main" && stem != "mod" {
                    mods.push(stem.to_string());
                }
            } else {
                mods.push((*seg).to_string());
            }
        }
    }
    (ident, mods)
}

/// What a brace on the scope stack means.
enum Frame {
    Mod(String),
    Impl(String),
    Other,
}

/// Linear scan of one file: `mod`/`impl` scope tracking, `fn` items,
/// `use` declarations, interior-mutable statics.
fn scan_file(
    file: &SourceFile,
    fi: usize,
    fs: &mut FileSyms,
    fns: &mut Vec<FnSym>,
    mut_statics: &mut Vec<String>,
) {
    let toks = &file.toks;
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<Frame> = None;
    let mut k = 0usize;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("{") {
            stack.push(pending.take().unwrap_or(Frame::Other));
            k += 1;
            continue;
        }
        if t.is_punct("}") {
            stack.pop();
            k += 1;
            continue;
        }
        if t.is_punct(";") {
            pending = None;
            k += 1;
            continue;
        }
        if t.is_ident("mod") && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            pending = Some(Frame::Mod(toks[k + 1].text.clone()));
            k += 2;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some(ty) = impl_self_ty(toks, k) {
                pending = Some(Frame::Impl(ty));
            }
            k += 1;
            continue;
        }
        if t.is_ident("use") {
            let end = parse_use(toks, k + 1, fs);
            k = end;
            continue;
        }
        if t.is_ident("static") {
            k = scan_static(toks, k, mut_statics);
            continue;
        }
        if t.is_ident("fn") && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let after = scan_fn(file, fi, k, &stack, fs, fns);
            k = after;
            continue;
        }
        k += 1;
    }
}

/// The self type of an `impl`/`trait` header starting at `k`:
/// `impl Type`, `impl<T> Type<T>`, `impl Trait for Type`, `trait Name`.
fn impl_self_ty(toks: &[Tok], k: usize) -> Option<String> {
    let mut j = k + 1;
    // Skip the generic parameter list after the keyword.
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("<") {
                depth += 1;
            } else if toks[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // `impl Trait for Type { …` — the self type follows `for`, if any.
    let mut first_ident: Option<&Tok> = None;
    let mut i = j;
    while i < toks.len() && !toks[i].is_punct("{") && !toks[i].is_punct(";") {
        if toks[i].is_ident("for") {
            first_ident = None; // restart: the type is after `for`
        } else if toks[i].is_ident("where") {
            break;
        } else if first_ident.is_none()
            && toks[i].kind == TokKind::Ident
            && !toks[i].is_ident("dyn")
        {
            first_ident = Some(&toks[i]);
        }
        i += 1;
    }
    first_ident.map(|t| t.text.clone())
}

/// Parses one `use` declaration starting just after the `use` keyword;
/// returns the index after the terminating `;`.
fn parse_use(toks: &[Tok], start: usize, fs: &mut FileSyms) -> usize {
    let mut end = start;
    while end < toks.len() && !toks[end].is_punct(";") {
        end += 1;
    }
    let mut prefix: Vec<String> = Vec::new();
    collect_use_tree(toks, start, end, &mut prefix, fs);
    end + 1
}

/// Recursive descent over a use-tree slice `[i, end)` with the current
/// path `prefix`; emits `(alias, full path)` pairs into `fs`.
fn collect_use_tree(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    fs: &mut FileSyms,
) {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            last = Some(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            if let Some(seg) = last.take() {
                prefix.push(seg);
            }
            i += 1;
            continue;
        }
        if t.is_ident("as") {
            // `path as alias` — alias the *current* last segment.
            if let (Some(seg), Some(alias)) = (
                last.take(),
                toks.get(i + 1).filter(|a| a.kind == TokKind::Ident),
            ) {
                let mut full = prefix.clone();
                full.push(seg);
                fs.uses.push((alias.text.clone(), full));
            }
            i += 2;
            continue;
        }
        if t.is_punct("*") {
            fs.globs.push(prefix.clone());
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            // Group: split on top-level commas, recurse per element.
            let mut depth = 0usize;
            let mut elem_start = i + 1;
            let mut j = i + 1;
            while j < end {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if toks[j].is_punct(",") && depth == 0 {
                    collect_use_tree(toks, elem_start, j, prefix, fs);
                    elem_start = j + 1;
                }
                j += 1;
            }
            collect_use_tree(toks, elem_start, j.min(end), prefix, fs);
            i = j + 1;
            continue;
        }
        if t.is_punct(",") {
            // Top-level comma outside a group (shouldn't appear) — flush.
            flush_use_leaf(&mut last, prefix, fs);
            i += 1;
            continue;
        }
        i += 1;
    }
    flush_use_leaf(&mut last, prefix, fs);
    prefix.truncate(depth_at_entry);
}

fn flush_use_leaf(last: &mut Option<String>, prefix: &[String], fs: &mut FileSyms) {
    if let Some(seg) = last.take() {
        if seg != "self" {
            let mut full = prefix.to_vec();
            full.push(seg.clone());
            fs.uses.push((seg, full));
        } else if !prefix.is_empty() {
            // `use a::b::{self, …}` — alias `b` to the prefix itself.
            let alias = prefix[prefix.len() - 1].clone();
            fs.uses.push((alias, prefix.to_vec()));
        }
    }
}

/// Records a `static` declaration if interior-mutable; returns the index
/// to resume scanning from (just past the name).
fn scan_static(toks: &[Tok], k: usize, mut_statics: &mut Vec<String>) -> usize {
    let mut j = k + 1;
    let is_static_mut = toks.get(j).is_some_and(|t| t.is_ident("mut"));
    if is_static_mut {
        j += 1;
    }
    let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
        return k + 1;
    };
    // Type tokens run from after the `:` to the `=` or `;`.
    let mut interior = is_static_mut;
    let mut i = j + 1;
    let mut depth = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && (t.is_punct("=") || t.is_punct(";")) {
            break;
        } else if t.kind == TokKind::Ident && INTERIOR_MUTABLE.contains(&t.text.as_str()) {
            interior = true;
        }
        i += 1;
    }
    if interior {
        mut_statics.push(name.text.clone());
    }
    j + 1
}

/// Parses one `fn` item starting at the `fn` keyword index `k`; returns
/// the index to resume from (after the signature — the body is scanned
/// by the caller's loop so nested items are still found).
fn scan_fn(
    file: &SourceFile,
    fi: usize,
    k: usize,
    stack: &[Frame],
    fs: &mut FileSyms,
    fns: &mut Vec<FnSym>,
) -> usize {
    let toks = &file.toks;
    let name_tok = k + 1;
    let name = toks[name_tok].text.clone();
    // Skip generics between name and the parameter list.
    let mut j = name_tok + 1;
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("<") {
                depth += 1;
            } else if toks[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
        return name_tok + 1;
    }
    let params_open = j;
    let Some(params_close) = file.matches[params_open] else {
        return name_tok + 1;
    };
    let params = parse_params(toks, params_open + 1, params_close);
    // Find the body `{` (or a `;` for bodiless signatures), skipping
    // any delimited groups in the return type / where clause.
    let mut b = params_close + 1;
    let mut body = None;
    while b < toks.len() {
        let t = &toks[b];
        if t.is_punct("{") {
            let close = file.matches[b].unwrap_or(toks.len() - 1);
            body = Some((b, close));
            break;
        }
        if t.is_punct(";") {
            break;
        }
        if (t.is_punct("(") || t.is_punct("[")) && file.matches[b].is_some() {
            b = file.matches[b].expect("checked is_some") + 1;
            continue;
        }
        b += 1;
    }
    let mut module = vec![fs.crate_ident.clone()];
    module.extend(fs.mod_base.iter().cloned());
    let mut self_ty = None;
    for frame in stack {
        match frame {
            Frame::Mod(m) => module.push(m.clone()),
            Frame::Impl(ty) => self_ty = Some(ty.clone()),
            Frame::Other => {}
        }
    }
    let idx = fns.len();
    fns.push(FnSym {
        name,
        module,
        self_ty,
        file: fi,
        name_tok,
        body,
        params,
        is_test: toks[k].in_test || file.class.test_file,
    });
    fs.fns.push(idx);
    // Resume after the signature; the caller's scan continues into the
    // body (bodies can declare nested fns, statics, uses).
    body.map_or(params_close + 1, |(open, _)| open)
}

/// Parses `name: Type` parameters in `(start, end)`; receivers
/// (`self`, `&mut self`) and destructuring patterns are skipped.
fn parse_params(toks: &[Tok], start: usize, end: usize) -> Vec<Param> {
    let mut out = Vec::new();
    let mut seg_start = start;
    let mut depth = 0usize;
    let mut angle = 0i32;
    let mut i = start;
    while i <= end {
        let at_end = i == end;
        let t = &toks[i.min(end)];
        if !at_end {
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth = depth.saturating_sub(1);
            } else if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            }
        }
        if at_end || (t.is_punct(",") && depth == 0 && angle <= 0) {
            if let Some(p) = parse_one_param(toks, seg_start, i) {
                out.push(p);
            }
            seg_start = i + 1;
        }
        i += 1;
    }
    out
}

fn parse_one_param(toks: &[Tok], start: usize, end: usize) -> Option<Param> {
    let colon = (start..end).find(|&i| toks[i].is_punct(":"))?;
    let name_tok = toks.get(colon.checked_sub(1)?)?;
    if name_tok.kind != TokKind::Ident {
        return None; // destructuring pattern — out of scope
    }
    let ty: Vec<&str> = toks[colon + 1..end]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    Some(Param {
        name: name_tok.text.clone(),
        ty: ty.join(" "),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let sources = files
            .iter()
            .map(|(p, s)| SourceFile::new(p, s))
            .collect::<Vec<_>>();
        Workspace::build(sources, &[], "rootcrate")
    }

    #[test]
    fn file_layout_module_paths() {
        let ws = ws_of(&[
            ("crates/demo/src/lib.rs", "pub fn a() {}"),
            ("crates/demo/src/stream/mod.rs", "pub fn b() {}"),
            ("crates/demo/src/stream/worker.rs", "pub fn c() {}"),
            ("src/lib.rs", "pub fn d() {}"),
        ]);
        let quals: Vec<String> = ws.fns.iter().map(FnSym::qual).collect();
        assert_eq!(
            quals,
            [
                "demo::a",
                "demo::stream::b",
                "demo::stream::worker::c",
                "rootcrate::d",
            ]
        );
    }

    #[test]
    fn inline_mods_impls_and_methods() {
        let src = "pub mod inner {\n\
                       pub struct S;\n\
                       impl S { pub fn m(&self, n: u32) -> u32 { n } }\n\
                       impl Clone for S { fn clone(&self) -> S { S } }\n\
                   }\n";
        let ws = ws_of(&[("crates/demo/src/lib.rs", src)]);
        let quals: Vec<String> = ws.fns.iter().map(FnSym::qual).collect();
        assert_eq!(quals, ["demo::inner::S::m", "demo::inner::S::clone"]);
        assert_eq!(ws.fns[0].params.len(), 1);
        assert_eq!(ws.fns[0].params[0].name, "n");
    }

    #[test]
    fn use_aliases_flatten_groups_and_renames() {
        let src = "use crate::stream::{shard_epoch_delta, checkpoint as ckpt};\n\
                   use ldp_common::rng::rng_from_seed;\n\
                   use super::*;\n";
        let ws = ws_of(&[("crates/demo/src/x.rs", src)]);
        let fs = &ws.syms[0];
        let find = |alias: &str| {
            fs.uses
                .iter()
                .find(|(a, _)| a == alias)
                .map(|(_, p)| p.join("::"))
        };
        assert_eq!(
            find("shard_epoch_delta").as_deref(),
            Some("crate::stream::shard_epoch_delta")
        );
        assert_eq!(find("ckpt").as_deref(), Some("crate::stream::checkpoint"));
        assert_eq!(
            find("rng_from_seed").as_deref(),
            Some("ldp_common::rng::rng_from_seed")
        );
        assert_eq!(fs.globs, vec![vec!["super".to_string()]]);
    }

    #[test]
    fn interior_mutable_statics_are_collected() {
        let src = "static SEQ: std::sync::atomic::AtomicU64 = init();\n\
                   static NAME: &str = \"fine\";\n\
                   static mut RAW: u32 = 0;\n";
        let ws = ws_of(&[("crates/demo/src/x.rs", src)]);
        assert_eq!(ws.mut_statics, ["RAW", "SEQ"]);
    }

    #[test]
    fn fn_bodies_and_rng_params() {
        let src = "pub fn draw(rng: &mut ChaChaRng, n: usize) -> u64 { body(rng, n) }\n\
                   pub fn sig_only();\n";
        let ws = ws_of(&[("crates/demo/src/x.rs", src)]);
        assert!(ws.fns[0].body.is_some());
        assert!(ws.fns[0].params[0].is_rngish());
        assert!(!ws.fns[0].params[1].is_rngish());
        assert!(ws.fns[1].body.is_none());
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let src = "pub fn live() {}\n\
                   #[cfg(test)]\nmod tests { fn helper() {} }\n";
        let ws = ws_of(&[("crates/demo/src/x.rs", src)]);
        assert!(!ws.fns[0].is_test);
        assert!(ws.fns[1].is_test);
    }
}
