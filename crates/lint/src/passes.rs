//! Cross-file analysis passes over the call graph: P01 transitive
//! purity and P02 RNG stream discipline.
//!
//! **P01 — unit purity.** Every function reachable from the declared
//! pure roots (default: [`DEFAULT_PURE_ROOTS`], overridable via
//! `[[pure_root]]` in `lint_waivers.toml`) must be transitively free of
//! ambient state: entropy sources, wall-clock reads, environment reads,
//! `static mut`, and reads of interior-mutable statics. Calls the graph
//! could not resolve to workspace code ([`Callee::Opaque`]) are treated
//! pessimistically as impure — the pass would rather demand an
//! `[[edge_waiver]]` than silently trust an unresolved path. External
//! callees (std, vendored crates) are trusted: the D02-class sources
//! they could smuggle in are matched by name at every call site anyway.
//!
//! **P02 — RNG stream discipline.** Three shapes that leave every draw
//! *defined* today but one refactor away from reshuffling the stream:
//! (a) one RNG binding feeding two separate calls inside a single
//! statement (the inter-call complement of D08's intra-call rule);
//! (b) cloning an RNG outside the blessed η-sweep site — a forked
//! stream replays draws instead of deriving an independent stream via
//! `derive_seed2`; (c) an RNG binding captured by a closure handed to
//! `map_trials`/`map_trials_with`/`thread::spawn`, where per-trial
//! interleaving makes the draw order scheduler-dependent.
//!
//! Findings are emitted as [`PassFinding`]s (file index + token index);
//! [`crate::analyze_files`] converts them to ordinary [`crate::Finding`]s
//! with line/column/source-line context.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, CallSite, Callee};
use crate::lexer::TokKind;
use crate::rules::RuleId;
use crate::symbols::Workspace;
use crate::waivers::EdgeWaiver;

/// The built-in pure-root list, used when `lint_waivers.toml` declares
/// no `[[pure_root]]` entries: the determinism-critical entry points
/// whose whole call closure the golden gates depend on.
pub const DEFAULT_PURE_ROOTS: [&str; 11] = [
    "attack_from_json",
    "attack_to_json",
    "delta_from_json",
    "delta_to_json",
    "from_checkpoint",
    "run_experiment",
    "run_eta_sweep",
    "shard_epoch_delta",
    "spec_from_json",
    "spec_to_json",
    "to_checkpoint",
];

/// Files allowed to clone an RNG (the η-sweep replays a prefix stream
/// deliberately, with a comment explaining why).
const BLESSED_RNG_CLONE_FILES: [&str; 1] = ["crates/sim/src/runner.rs"];

/// `std::env` functions that read ambient process state.
const ENV_READS: [&str; 9] = [
    "args",
    "args_os",
    "current_dir",
    "current_exe",
    "temp_dir",
    "var",
    "var_os",
    "vars",
    "vars_os",
];

/// A finding located by file index + token index (resolved to
/// line/column by the caller, which owns the sources).
#[derive(Debug)]
pub struct PassFinding {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Token index of the offending identifier.
    pub tok: usize,
    /// Which pass fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

/// Runs both cross-file passes. Returns the findings plus a per-entry
/// "was used" flag for `edge_waivers` (feeding `--check-waivers`).
/// Errors when a declared pure root matches no library function — a
/// misspelled root would otherwise silently disable the pass.
pub fn run_passes(
    ws: &Workspace,
    cg: &CallGraph,
    pure_roots: &[String],
    edge_waivers: &[EdgeWaiver],
) -> Result<(Vec<PassFinding>, Vec<bool>), String> {
    let mut findings = Vec::new();
    let mut used = vec![false; edge_waivers.len()];
    p01_purity(ws, cg, pure_roots, edge_waivers, &mut findings, &mut used)?;
    p02_stream_discipline(ws, cg, &mut findings);
    findings.sort_by_key(|f| (f.file, f.tok, f.rule));
    Ok((findings, used))
}

/// True when `fns[i]` may serve as a pure root / traversal node: live
/// library code, not a test body.
fn library_fn(ws: &Workspace, i: usize) -> bool {
    let f = &ws.fns[i];
    if f.is_test {
        return false;
    }
    let c = &ws.files[f.file].class;
    !(c.test_file || c.example || c.bin || c.bench_crate)
}

/// Does `pattern` name this function? Accepts a bare name, a full
/// `crate::mod::Type::name` path, or any `::`-joined path suffix.
fn fn_matches(ws: &Workspace, i: usize, pattern: &str) -> bool {
    let f = &ws.fns[i];
    if f.name == pattern {
        return true;
    }
    let qual = f.qual();
    qual == pattern || qual.ends_with(&format!("::{pattern}"))
}

/// Does `pattern` name this call's display path?
fn display_matches(display: &str, pattern: &str) -> bool {
    display == pattern || display.ends_with(&format!("::{pattern}"))
}

/// Finds the first edge waiver covering `caller → call`, if any.
fn edge_waiver_for(
    ws: &Workspace,
    edge_waivers: &[EdgeWaiver],
    caller: usize,
    call: &CallSite,
) -> Option<usize> {
    edge_waivers.iter().position(|w| {
        if !fn_matches(ws, caller, &w.caller) {
            return false;
        }
        match &call.callee {
            Callee::Resolved(v) => {
                v.iter().any(|&c| fn_matches(ws, c, &w.callee))
                    || display_matches(&call.display, &w.callee)
            }
            _ => display_matches(&call.display, &w.callee),
        }
    })
}

/// P01: breadth-first reachability from the pure roots, flagging direct
/// impurities inside reached bodies and opaque call edges.
fn p01_purity(
    ws: &Workspace,
    cg: &CallGraph,
    pure_roots: &[String],
    edge_waivers: &[EdgeWaiver],
    findings: &mut Vec<PassFinding>,
    used: &mut [bool],
) -> Result<(), String> {
    let mut visited = vec![false; ws.fns.len()];
    let mut pred: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for root in pure_roots {
        let mut any = false;
        for (i, seen) in visited.iter_mut().enumerate() {
            if library_fn(ws, i) && fn_matches(ws, i, root) {
                any = true;
                if !*seen {
                    *seen = true;
                    queue.push(i);
                }
            }
        }
        if !any {
            return Err(format!(
                "[P01] pure root `{root}` matches no library function — fix the \
                 [[pure_root]] entry in lint_waivers.toml (or the default root list)"
            ));
        }
    }
    let mut qi = 0usize;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for (tok, why) in direct_impurities(ws, u) {
            findings.push(PassFinding {
                file: ws.fns[u].file,
                tok,
                rule: RuleId::P01,
                message: format!(
                    "{why} inside `{}`, which must stay pure: {}",
                    ws.fns[u].qual(),
                    chain_text(ws, &pred, u)
                ),
            });
        }
        for call in &cg.calls[u] {
            if let Some(wi) = edge_waiver_for(ws, edge_waivers, u, call) {
                used[wi] = true;
                continue;
            }
            match &call.callee {
                Callee::Opaque => findings.push(PassFinding {
                    file: ws.fns[u].file,
                    tok: call.name_tok,
                    rule: RuleId::P01,
                    message: format!(
                        "call to `{}` from `{}` did not resolve to workspace code — \
                         P01 treats unresolved calls as impure ({}); simplify the \
                         path or add an [[edge_waiver]] with a justification",
                        call.display,
                        ws.fns[u].qual(),
                        chain_text(ws, &pred, u)
                    ),
                }),
                Callee::Resolved(v) => {
                    for &c in v {
                        if !visited[c] {
                            visited[c] = true;
                            pred[c] = Some(u);
                            queue.push(c);
                        }
                    }
                }
                Callee::External => {}
            }
        }
    }
    Ok(())
}

/// Renders the root → … → fn chain that made `u` purity-relevant.
fn chain_text(ws: &Workspace, pred: &[Option<usize>], u: usize) -> String {
    let mut chain = vec![u];
    let mut cur = u;
    while let Some(p) = pred[cur] {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    if chain.len() == 1 {
        format!("`{}` is a declared pure root", ws.fns[u].qual())
    } else {
        let path: Vec<String> = chain.iter().map(|&i| ws.fns[i].qual()).collect();
        format!("reachable from pure root via {}", path.join(" -> "))
    }
}

/// Scans one function body for direct ambient-state touches. Test-gated
/// tokens are skipped (a `#[cfg(test)]` helper nested in a pure fn's
/// file cannot taint it).
fn direct_impurities(ws: &Workspace, u: usize) -> Vec<(usize, String)> {
    let fun = &ws.fns[u];
    let Some((open, close)) = fun.body else {
        return Vec::new();
    };
    let toks = &ws.files[fun.file].toks;
    let mut out = Vec::new();
    for k in open + 1..close {
        let t = &toks[k];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let ambient_entropy = matches!(t.text.as_str(), "thread_rng" | "OsRng" | "from_entropy")
            || (t.text == "random"
                && k >= 2
                && toks[k - 1].is_punct("::")
                && toks[k - 2].is_ident("rand"));
        if ambient_entropy {
            out.push((k, format!("ambient entropy source `{}`", t.text)));
            continue;
        }
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && toks.get(k + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(k + 2).is_some_and(|n| n.is_ident("now"))
        {
            out.push((k, format!("wall-clock read `{}::now()`", t.text)));
            continue;
        }
        if t.is_ident("env")
            && toks.get(k + 1).is_some_and(|n| n.is_punct("::"))
            && toks
                .get(k + 2)
                .is_some_and(|n| ENV_READS.iter().any(|e| n.is_ident(e)))
        {
            out.push((k, format!("environment read `env::{}`", toks[k + 2].text)));
            continue;
        }
        if t.is_ident("static") && toks.get(k + 1).is_some_and(|n| n.is_ident("mut")) {
            out.push((k, "`static mut` declaration".to_string()));
            continue;
        }
        if ws.mut_statics.binary_search(&t.text).is_ok() && k >= 1 && !toks[k - 1].is_punct(".") {
            out.push((k, format!("read of interior-mutable static `{}`", t.text)));
        }
    }
    out
}

/// P02: the three stream-discipline shapes, per library function.
fn p02_stream_discipline(ws: &Workspace, cg: &CallGraph, findings: &mut Vec<PassFinding>) {
    for u in 0..ws.fns.len() {
        let fun = &ws.fns[u];
        if fun.is_test || !ws.files[fun.file].class.library() {
            continue;
        }
        let Some(body) = fun.body else { continue };
        let rel_path = ws.files[fun.file].rel_path.as_str();
        p02a_same_statement(ws, cg, u, body, findings);
        if !BLESSED_RNG_CLONE_FILES.contains(&rel_path) {
            p02b_clone(ws, u, body, findings);
        }
        p02c_captured_in_closure(ws, cg, u, body, findings);
    }
}

/// Identifier heuristic shared with D08: a binding "carries an RNG" when
/// its name mentions `rng`.
fn rngish(text: &str) -> bool {
    text.to_ascii_lowercase().contains("rng")
}

/// P02-a: one RNG binding feeding ≥ 2 distinct call units inside a
/// single statement. "Statement" splits at `;`, `{`, `}`, `,` and `=>`
/// — the comma split is what keeps this the exact complement of D08
/// (same RNG in two argument *slots* of one call), so no shape is
/// reported twice. A use's unit is the outermost enclosing call's
/// argument list, or the RNG's own method-call parens at statement
/// level.
fn p02a_same_statement(
    ws: &Workspace,
    cg: &CallGraph,
    u: usize,
    (open, close): (usize, usize),
    findings: &mut Vec<PassFinding>,
) {
    let toks = &ws.files[ws.fns[u].file].toks;
    let mut call_opens: BTreeMap<usize, usize> = BTreeMap::new();
    for call in &cg.calls[u] {
        call_opens.insert(call.args_open, call.args_close);
    }
    // (name, statement id) → distinct unit ids + first use token.
    let mut uses: BTreeMap<(String, usize), (Vec<usize>, usize)> = BTreeMap::new();
    let mut stmt = 0usize;
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (open, close) of enclosing calls
    for k in open + 1..close {
        while stack.last().is_some_and(|&(_, c)| k >= c) {
            stack.pop();
        }
        let t = &toks[k];
        if t.is_punct(";")
            || t.is_punct("{")
            || t.is_punct("}")
            || t.is_punct(",")
            || t.is_punct("=>")
        {
            stmt += 1;
            continue;
        }
        if let Some(&c) = call_opens.get(&k) {
            stack.push((k, c));
            continue;
        }
        if t.in_test {
            continue;
        }
        // Receiver draw: `rng.method(` with `method != clone` (clones
        // are P02-b's shape, not a draw).
        let is_receiver = t.kind == TokKind::Ident
            && rngish(&t.text)
            && toks.get(k + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(k + 2)
                .is_some_and(|n| n.kind == TokKind::Ident && !n.is_ident("clone"))
            && toks.get(k + 3).is_some_and(|n| n.is_punct("("));
        let is_mut_borrow = t.is_punct("&")
            && toks.get(k + 1).is_some_and(|n| n.is_ident("mut"))
            && toks
                .get(k + 2)
                .is_some_and(|n| n.kind == TokKind::Ident && rngish(&n.text));
        let (name, use_tok, own_unit) = if is_receiver {
            (t.text.clone(), k, Some(k + 3))
        } else if is_mut_borrow {
            (toks[k + 2].text.clone(), k + 2, None)
        } else {
            continue;
        };
        let unit = match (stack.first(), own_unit) {
            (Some(&(outer, _)), _) => outer,
            (None, Some(own)) => own,
            (None, None) => continue, // `&mut rng` outside any call: a borrow, not a draw
        };
        let entry = uses
            .entry((name, stmt))
            .or_insert_with(|| (Vec::new(), use_tok));
        if !entry.0.contains(&unit) {
            entry.0.push(unit);
        }
    }
    for ((name, _), (units, first_tok)) in uses {
        if units.len() >= 2 {
            findings.push(PassFinding {
                file: ws.fns[u].file,
                tok: first_tok,
                rule: RuleId::P02,
                message: format!(
                    "`{name}` feeds {} separate calls within one statement — the consumed \
                     stream depends on evaluation order, which the next refactor can \
                     silently reshuffle; bind each draw to its own `let`",
                    units.len()
                ),
            });
        }
    }
}

/// P02-b: `rng.clone()` outside the blessed η-sweep file.
fn p02b_clone(
    ws: &Workspace,
    u: usize,
    (open, close): (usize, usize),
    findings: &mut Vec<PassFinding>,
) {
    let toks = &ws.files[ws.fns[u].file].toks;
    for k in open + 1..close {
        let t = &toks[k];
        if t.in_test || t.kind != TokKind::Ident || !rngish(&t.text) {
            continue;
        }
        if toks.get(k + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(k + 2).is_some_and(|n| n.is_ident("clone"))
            && toks.get(k + 3).is_some_and(|n| n.is_punct("("))
        {
            findings.push(PassFinding {
                file: ws.fns[u].file,
                tok: k,
                rule: RuleId::P02,
                message: format!(
                    "`{}.clone()` forks an RNG stream — the clone replays the same draws \
                     instead of consuming independent ones; derive a fresh stream via \
                     derive_seed2 (the η-sweep replay site in runner.rs is the one \
                     blessed exception)",
                    t.text
                ),
            });
        }
    }
}

/// P02-c: an RNG binding captured by a closure handed to a trial
/// fan-out (`map_trials`/`map_trials_with`) or `thread::spawn`: worker
/// interleaving then decides the draw order. RNGs *bound inside* the
/// closure (parameters, `let`s) are fine — that is the sanctioned
/// per-trial-stream pattern.
fn p02c_captured_in_closure(
    ws: &Workspace,
    cg: &CallGraph,
    u: usize,
    _body: (usize, usize),
    findings: &mut Vec<PassFinding>,
) {
    let toks = &ws.files[ws.fns[u].file].toks;
    for call in &cg.calls[u] {
        let last = call.display.rsplit("::").next().unwrap_or(&call.display);
        let is_sink = matches!(last, "map_trials" | "map_trials_with")
            || call.display.ends_with("thread::spawn")
            || call.display == "thread::spawn"
            || (call.is_method && call.display == ".spawn");
        if !is_sink || call.args_close <= call.args_open {
            continue;
        }
        // Closure-local names: params between `|…|` plus `let` bindings.
        let span = call.args_open + 1..call.args_close;
        let mut local: Vec<String> = Vec::new();
        let mut i = span.start;
        let mut saw_closure = false;
        while i < span.end {
            let t = &toks[i];
            if t.is_punct("||") {
                saw_closure = true;
            } else if t.is_punct("|") && !saw_closure {
                saw_closure = true;
                // Collect every ident up to the closing `|` — parameter
                // names and their type tokens alike (over-collecting
                // type names is harmless: they only ever *exempt*).
                let mut j = i + 1;
                while j < span.end && !toks[j].is_punct("|") {
                    if toks[j].kind == TokKind::Ident {
                        local.push(toks[j].text.clone());
                    }
                    j += 1;
                }
                i = j;
            } else if t.is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) {
                    local.push(name.text.clone());
                }
            }
            i += 1;
        }
        if !saw_closure {
            continue;
        }
        let mut flagged: Vec<String> = Vec::new();
        for k in span.clone() {
            let t = &toks[k];
            if t.in_test || t.kind != TokKind::Ident || !rngish(&t.text) {
                continue;
            }
            if local.contains(&t.text) || flagged.contains(&t.text) {
                continue;
            }
            // Skip path segments, call/macro names, and field inits:
            // `rng_from_seed(…)`, `rand::rngs::…`, `rng_seed: x`.
            let prev_path = k >= 1 && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::"));
            let next_path = toks.get(k + 1).is_some_and(|n| {
                n.is_punct("::") || n.is_punct("(") || n.is_punct("!") || n.is_punct(":")
            });
            if prev_path || next_path {
                continue;
            }
            flagged.push(t.text.clone());
            findings.push(PassFinding {
                file: ws.fns[u].file,
                tok: k,
                rule: RuleId::P02,
                message: format!(
                    "closure passed to `{}` captures RNG `{}` from the enclosing scope — \
                     per-trial interleaving makes the draw order scheduler-dependent; \
                     take the RNG as a closure parameter or derive a per-trial stream \
                     inside the closure",
                    call.display, t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::symbols::SourceFile;

    /// `(rule id, message)` pairs plus the per-edge-waiver "used" flags.
    type Analyzed = (Vec<(String, String)>, Vec<bool>);

    fn analyze(
        files: &[(&str, &str)],
        roots: &[&str],
        edge_waivers: &[EdgeWaiver],
    ) -> Result<Analyzed, String> {
        let sources = files
            .iter()
            .map(|(p, s)| SourceFile::new(p, s))
            .collect::<Vec<_>>();
        let ws = Workspace::build(sources, &[], "rootcrate");
        let cg = CallGraph::build(&ws);
        let owned: Vec<String> = roots.iter().map(|r| (*r).to_string()).collect();
        let (found, used) = run_passes(&ws, &cg, &owned, edge_waivers)?;
        let rendered = found
            .into_iter()
            .map(|f| (f.rule.id().to_string(), f.message))
            .collect();
        Ok((rendered, used))
    }

    fn edge(caller: &str, callee: &str) -> EdgeWaiver {
        EdgeWaiver {
            caller: caller.to_string(),
            callee: callee.to_string(),
            justification: "test".to_string(),
            expires_pr: 99,
        }
    }

    #[test]
    fn transitive_env_read_is_found_across_files_with_chain() {
        let (found, _) = analyze(
            &[
                (
                    "crates/app/src/lib.rs",
                    "pub mod util;\n\
                     pub fn entry(x: u64) -> u64 { util::scale(x) }\n",
                ),
                (
                    "crates/app/src/util.rs",
                    "pub fn scale(x: u64) -> u64 { jitter() + x }\n\
                     fn jitter() -> u64 { std::env::var(\"J\").map(|_| 1).unwrap_or(0) }\n",
                ),
            ],
            &["entry"],
            &[],
        )
        .expect("roots resolve");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].0, "P01");
        assert!(found[0].1.contains("env::var"), "{}", found[0].1);
        assert!(
            found[0]
                .1
                .contains("app::entry -> app::util::scale -> app::util::jitter"),
            "chain is reconstructed: {}",
            found[0].1
        );
    }

    #[test]
    fn opaque_callee_is_pessimistic_and_edge_waivable() {
        let files = [(
            "crates/app/src/lib.rs",
            "pub fn entry() { crate::missing::helper(); }\n",
        )];
        let (found, _) = analyze(&files, &["entry"], &[]).expect("roots resolve");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("did not resolve"), "{}", found[0].1);
        // The same edge, waived: no finding, and the waiver is marked used.
        let waiver = [edge("entry", "crate::missing::helper")];
        let (found, used) = analyze(&files, &["entry"], &waiver).expect("roots resolve");
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(used, [true]);
    }

    #[test]
    fn edge_waiver_cuts_traversal_into_impure_callee() {
        let files = [(
            "crates/app/src/lib.rs",
            "pub fn entry() { telemetry(); }\n\
             fn telemetry() { let _ = std::time::Instant::now(); }\n",
        )];
        let (found, _) = analyze(&files, &["entry"], &[]).expect("roots resolve");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("Instant::now"));
        let waiver = [edge("entry", "telemetry")];
        let (found, used) = analyze(&files, &["entry"], &waiver).expect("roots resolve");
        assert!(found.is_empty(), "{found:?}");
        assert_eq!(used, [true]);
    }

    #[test]
    fn mut_static_reads_and_declarations_are_impure() {
        let (found, _) = analyze(
            &[(
                "crates/app/src/lib.rs",
                "static SEQ: std::sync::atomic::AtomicU64 = z();\n\
                 pub fn entry() -> u64 { SEQ.fetch_add(1, O) }\n",
            )],
            &["entry"],
            &[],
        )
        .expect("roots resolve");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("interior-mutable static `SEQ`"));
    }

    #[test]
    fn unknown_root_is_a_hard_error() {
        let err = analyze(
            &[("crates/app/src/lib.rs", "pub fn entry() {}\n")],
            &["no_such_fn"],
            &[],
        )
        .expect_err("misspelled root must not silently disable the pass");
        assert!(err.contains("no_such_fn"), "{err}");
    }

    #[test]
    fn p02a_two_draws_one_statement_fire_sequential_lets_do_not() {
        let (found, _) = analyze(
            &[(
                "crates/app/src/lib.rs",
                "pub fn two(rng: &mut R) -> u64 { rng.next_u64() + rng.next_u64() }\n",
            )],
            &[],
            &[],
        )
        .expect("no roots needed");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].0, "P02");
        assert!(found[0].1.contains("2 separate calls"), "{}", found[0].1);
        let (clean, _) = analyze(
            &[(
                "crates/app/src/lib.rs",
                "pub fn two(rng: &mut R) -> u64 {\n\
                     let a = rng.next_u64();\n\
                     let b = rng.next_u64();\n\
                     a + b\n\
                 }\n",
            )],
            &[],
            &[],
        )
        .expect("no roots needed");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn p02a_leaves_the_intra_call_shape_to_d08() {
        // Same RNG in two argument slots of ONE call: D08's shape — the
        // comma splits P02-a's statement, so it stays silent here.
        let (found, _) = analyze(
            &[(
                "crates/app/src/lib.rs",
                "pub fn f(rng: &mut R) -> u64 { pair(rng.next_u64(), rng.next_u64()) }\n",
            )],
            &[],
            &[],
        )
        .expect("no roots needed");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn p02b_clone_fires_outside_blessed_file_only() {
        let src = "pub fn f(rng: &mut R) -> R { rng.clone() }\n";
        let (found, _) = analyze(&[("crates/app/src/lib.rs", src)], &[], &[]).expect("ok");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("forks an RNG stream"));
        let (blessed, _) = analyze(&[("crates/sim/src/runner.rs", src)], &[], &[]).expect("ok");
        assert!(blessed.is_empty(), "{blessed:?}");
    }

    #[test]
    fn p02c_captured_rng_fires_parameter_and_local_rngs_do_not() {
        let captured = "pub fn f(rng: &mut R) -> V {\n\
                            map_trials(8, 2, |trial| dist.sample(&mut rng))\n\
                        }\n\
                        pub fn map_trials(n: usize, t: usize, run: F) -> V { v }\n";
        let (found, _) = analyze(&[("crates/app/src/lib.rs", captured)], &[], &[]).expect("ok");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.contains("captures RNG `rng`"), "{}", found[0].1);
        let sanctioned = "pub fn f() -> V {\n\
                              map_trials(8, 2, |trial_rng| dist.sample(trial_rng))\n\
                          }\n\
                          pub fn g(seed: u64) -> V {\n\
                              map_trials(8, 2, move |trial| {\n\
                                  let mut rng = rng_from_seed(seed);\n\
                                  dist.sample(&mut rng)\n\
                              })\n\
                          }\n\
                          pub fn map_trials(n: usize, t: usize, run: F) -> V { v }\n";
        let (clean, _) = analyze(&[("crates/app/src/lib.rs", sanctioned)], &[], &[]).expect("ok");
        assert!(clean.is_empty(), "{clean:?}");
    }
}
