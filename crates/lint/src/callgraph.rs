//! Conservative call graph over the workspace symbol table.
//!
//! For every `fn` body the extractor records each call expression —
//! free calls (`helper(…)`), path calls (`crate::stream::f(…)`,
//! `Type::method(…)`), and method calls (`x.m(…)`) — and resolves the
//! callee against [`crate::symbols::Workspace`]:
//!
//! * **Resolved** — one or more workspace `fn` items. Ambiguous bare
//!   names and multi-impl methods resolve to the *union* of same-named
//!   candidates: the purity pass then checks all of them, which
//!   over-approximates reachability (safe direction for P01).
//! * **External** — a name/path that cannot be workspace code: `std`,
//!   vendored crates, or a bare name nothing in the workspace declares.
//! * **Opaque** — a path that *claims* to be workspace-internal
//!   (`crate::`/`self::`/`super::`-rooted or starting with a workspace
//!   crate ident) but resolves to nothing. The purity pass treats these
//!   pessimistically as impure.
//!
//! Resolution candidates exclude test-gated functions and functions in
//! test files, binaries, examples, and `crates/bench` — those targets
//! are program roots of their own and exempt from most determinism
//! rules, so letting them into the candidate pool would poison the
//! union resolution of common names (`parse`, `run`) with intentionally
//! impure code. Known limits, documented in the crate docs: turbofish
//! callees (`f::<T>(…)`) and fully-qualified `<T as Trait>::m` calls
//! are skipped, and field-closure invocations (`(self.cb)(…)`) are
//! invisible — all false-negative directions.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::symbols::{FnSym, Workspace};

/// Callee resolution for one call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// Workspace functions this call may dispatch to (≥ 1 entries).
    Resolved(Vec<usize>),
    /// Definitely not workspace code (std / vendored / unknown bare name).
    External,
    /// Workspace-looking path that did not resolve — treated as impure.
    Opaque,
}

/// One call expression inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Token index of the callee name identifier.
    pub name_tok: usize,
    /// Token index of the argument list opener `(`.
    pub args_open: usize,
    /// Token index of the argument list closer (body end if unmatched).
    pub args_close: usize,
    /// Display path for diagnostics (`crate::stream::f`, `.merge`).
    pub display: String,
    /// Resolution verdict.
    pub callee: Callee,
    /// For `x.m(…)`: the receiver identifier when it is a simple name.
    pub receiver: Option<String>,
    /// True for method-call syntax.
    pub is_method: bool,
}

/// The workspace call graph: per-function call sites, index-aligned
/// with [`Workspace::fns`].
#[derive(Debug)]
pub struct CallGraph {
    /// `calls[f]` = call sites inside `fns[f]`'s body.
    pub calls: Vec<Vec<CallSite>>,
}

/// Crate roots that are always external (std + the vendored stand-ins).
const EXTERNAL_CRATES: [&str; 7] = [
    "alloc",
    "core",
    "criterion",
    "proptest",
    "rand",
    "serde",
    "std",
];

/// Keywords and prelude constructors that look like `ident(` but are
/// never workspace function calls.
const NON_CALL_IDENTS: [&str; 28] = [
    "Err", "None", "Ok", "Self", "Some", "as", "box", "break", "const", "continue", "crate", "dyn",
    "else", "enum", "fn", "for", "if", "impl", "in", "let", "loop", "match", "move", "return",
    "self", "super", "while", "where",
];

/// True when `fns[idx]` may be the target of library-side resolution.
fn is_candidate(ws: &Workspace, idx: usize) -> bool {
    let f = &ws.fns[idx];
    if f.is_test {
        return false;
    }
    let class = &ws.files[f.file].class;
    !(class.test_file || class.example || class.bin || class.bench_crate)
}

impl CallGraph {
    /// Extracts and resolves every call site in the workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        // Name → candidate fn indices, workspace-wide.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for idx in 0..ws.fns.len() {
            if is_candidate(ws, idx) {
                by_name.entry(&ws.fns[idx].name).or_default().push(idx);
            }
        }
        let mut calls = Vec::with_capacity(ws.fns.len());
        for f in 0..ws.fns.len() {
            calls.push(extract_calls(ws, &by_name, f));
        }
        CallGraph { calls }
    }
}

fn extract_calls(ws: &Workspace, by_name: &BTreeMap<&str, Vec<usize>>, f: usize) -> Vec<CallSite> {
    let fun = &ws.fns[f];
    let Some((body_open, body_close)) = fun.body else {
        return Vec::new();
    };
    let file = &ws.files[fun.file];
    let toks = &file.toks;
    let mut out = Vec::new();
    for k in body_open + 1..body_close {
        let t = &toks[k];
        if t.kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let args_open = k + 1;
        let args_close = file.matches[args_open].unwrap_or(body_close);
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        if prev.is_some_and(|p| p.is_punct(".")) {
            // Method call `recv.name(…)`.
            let receiver = k
                .checked_sub(2)
                .map(|r| &toks[r])
                .filter(|r| r.kind == TokKind::Ident)
                .map(|r| r.text.clone());
            let callee = resolve_method(by_name, ws, &t.text);
            out.push(CallSite {
                name_tok: k,
                args_open,
                args_close,
                display: format!(".{}", t.text),
                callee,
                receiver,
                is_method: true,
            });
            continue;
        }
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue; // a nested fn declaration, not a call
        }
        // Walk a `a::b::name(` path backwards.
        let mut segs = vec![t.text.clone()];
        let mut p = k;
        let mut qualified_self = false;
        while p >= 2 && toks[p - 1].is_punct("::") {
            let head = &toks[p - 2];
            if head.kind == TokKind::Ident {
                segs.insert(0, head.text.clone());
                p -= 2;
            } else {
                // `<T as Trait>::name(` or turbofish residue — skip it.
                qualified_self = true;
                break;
            }
        }
        if qualified_self {
            continue;
        }
        if segs.len() == 1 && NON_CALL_IDENTS.contains(&segs[0].as_str()) {
            continue;
        }
        let callee = resolve_path(ws, by_name, fun, &segs);
        out.push(CallSite {
            name_tok: k,
            args_open,
            args_close,
            display: segs.join("::"),
            callee,
            receiver: None,
            is_method: false,
        });
    }
    out
}

/// Method calls resolve to the union of same-named methods (functions
/// with a `self_ty`); zero candidates means a std/vendored method.
fn resolve_method(by_name: &BTreeMap<&str, Vec<usize>>, ws: &Workspace, name: &str) -> Callee {
    let methods: Vec<usize> = by_name
        .get(name)
        .map(|c| {
            c.iter()
                .copied()
                .filter(|&i| ws.fns[i].self_ty.is_some())
                .collect()
        })
        .unwrap_or_default();
    if methods.is_empty() {
        Callee::External
    } else {
        Callee::Resolved(methods)
    }
}

/// Resolves a free/path call from `caller`'s scope.
fn resolve_path(
    ws: &Workspace,
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnSym,
    segs: &[String],
) -> Callee {
    let fs = &ws.syms[caller.file];
    // Single bare name: same-file, then same-crate, then workspace-wide,
    // then use-alias / glob expansion.
    if segs.len() == 1 {
        let name = segs[0].as_str();
        if let Some((alias, full)) = fs.uses.iter().find(|(a, _)| a == name) {
            let _ = alias;
            return resolve_absolute(ws, by_name, caller, full);
        }
        let Some(cands) = by_name.get(name) else {
            // Try glob imports before giving up.
            for glob in &fs.globs {
                let mut full = glob.clone();
                full.push(name.to_string());
                if let Callee::Resolved(v) = resolve_absolute(ws, by_name, caller, &full) {
                    return Callee::Resolved(v);
                }
            }
            return Callee::External;
        };
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| ws.fns[i].file == caller.file)
            .collect();
        if !same_file.is_empty() {
            return Callee::Resolved(same_file);
        }
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| ws.syms[ws.fns[i].file].crate_ident == fs.crate_ident)
            .collect();
        if !same_crate.is_empty() {
            return Callee::Resolved(same_crate);
        }
        return Callee::Resolved(cands.clone());
    }
    // Expand the first segment: use-alias, then self/super/crate.
    if let Some((_, full)) = fs.uses.iter().find(|(a, _)| a == &segs[0]) {
        let mut expanded = full.clone();
        expanded.extend(segs[1..].iter().cloned());
        return resolve_absolute(ws, by_name, caller, &expanded);
    }
    resolve_absolute(ws, by_name, caller, segs)
}

/// Resolves a (possibly `crate`/`self`/`super`-rooted) path against the
/// symbol table, normalizing the head to an absolute module path first.
fn resolve_absolute(
    ws: &Workspace,
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnSym,
    segs: &[String],
) -> Callee {
    let fs = &ws.syms[caller.file];
    let head = segs[0].as_str();
    let workspace_rooted = head == "crate"
        || head == "self"
        || head == "super"
        || ws.crate_idents.iter().any(|c| c == head);
    if EXTERNAL_CRATES.contains(&head) {
        return Callee::External;
    }
    // Normalize to `[crate_ident, mods…, (Type,) name]`.
    let mut abs: Vec<String> = match head {
        "crate" => {
            let mut v = vec![fs.crate_ident.clone()];
            v.extend(segs[1..].iter().cloned());
            v
        }
        "self" => {
            let mut v = vec![fs.crate_ident.clone()];
            v.extend(fs.mod_base.iter().cloned());
            v.extend(segs[1..].iter().cloned());
            v
        }
        "super" => {
            let mut v = vec![fs.crate_ident.clone()];
            let keep = fs.mod_base.len().saturating_sub(1);
            v.extend(fs.mod_base[..keep].iter().cloned());
            v.extend(segs[1..].iter().cloned());
            v
        }
        _ if ws.crate_idents.iter().any(|c| c == head) => segs.to_vec(),
        // Relative path (`util::scale(…)`): try caller-module-relative,
        // then crate-root-relative.
        _ => {
            let mut rel = vec![fs.crate_ident.clone()];
            rel.extend(fs.mod_base.iter().cloned());
            rel.extend(segs.iter().cloned());
            if let Some(v) = match_chain(ws, by_name, &rel) {
                return Callee::Resolved(v);
            }
            let mut v = vec![fs.crate_ident.clone()];
            v.extend(segs.iter().cloned());
            v
        }
    };
    if let Some(v) = match_chain(ws, by_name, &abs) {
        return Callee::Resolved(v);
    }
    // Re-exports flatten module paths (`pub use stream::f` makes
    // `ldp_sim::f` valid): fall back to name-in-crate, then to a
    // `Type::method` match anywhere.
    let name = abs.last().cloned().unwrap_or_default();
    let crate_ident = abs.first().cloned().unwrap_or_default();
    abs.pop();
    if let Some(cands) = by_name.get(name.as_str()) {
        let in_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| ws.syms[ws.fns[i].file].crate_ident == crate_ident)
            .collect();
        if !in_crate.is_empty() {
            return Callee::Resolved(in_crate);
        }
        // `Type::assoc(…)` — the head was a type name, not a module.
        if let Some(ty) = abs.last() {
            let on_type: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].self_ty.as_deref() == Some(ty.as_str()))
                .collect();
            if !on_type.is_empty() {
                return Callee::Resolved(on_type);
            }
        }
    }
    // An unresolved CamelCase tail is a tuple-struct or enum-variant
    // constructor (`Json::Num(…)`, `WindowMode::Sliding(…)`) — data
    // construction, not behavior; never a purity edge.
    let constructor = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    if workspace_rooted && !constructor {
        Callee::Opaque
    } else {
        // `SomeStdType::method(…)`, an external crate we don't know, or
        // a constructor.
        Callee::External
    }
}

/// Exact chain match: `path == module ++ [self_ty?] ++ name`.
fn match_chain(
    ws: &Workspace,
    by_name: &BTreeMap<&str, Vec<usize>>,
    path: &[String],
) -> Option<Vec<usize>> {
    let name = path.last()?;
    let cands = by_name.get(name.as_str())?;
    let hits: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| {
            let f = &ws.fns[i];
            let mut chain: Vec<&str> = f.module.iter().map(String::as_str).collect();
            if let Some(ty) = &f.self_ty {
                chain.push(ty);
            }
            chain.push(&f.name);
            chain.len() == path.len() && chain.iter().zip(path).all(|(a, b)| *a == b)
        })
        .collect();
    if hits.is_empty() {
        None
    } else {
        Some(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SourceFile;

    fn graph_of(files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let sources = files
            .iter()
            .map(|(p, s)| SourceFile::new(p, s))
            .collect::<Vec<_>>();
        let ws = Workspace::build(sources, &[], "rootcrate");
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn callee_of<'g>(ws: &Workspace, cg: &'g CallGraph, caller: &str, display: &str) -> &'g Callee {
        let f = ws
            .fns
            .iter()
            .position(|f| f.name == caller)
            .expect("caller exists in fixture");
        &cg.calls[f]
            .iter()
            .find(|c| c.display == display)
            .expect("call site exists in fixture")
            .callee
    }

    #[test]
    fn cross_file_relative_and_crate_paths_resolve() {
        let (ws, cg) = graph_of(&[
            (
                "crates/app/src/lib.rs",
                "pub mod util;\n\
                 pub fn entry(x: u64) -> u64 { util::scale(x) + crate::util::twice(x) }\n",
            ),
            (
                "crates/app/src/util.rs",
                "pub fn scale(x: u64) -> u64 { x * 3 }\n\
                 pub fn twice(x: u64) -> u64 { x * 2 }\n",
            ),
        ]);
        let scale = ws
            .fns
            .iter()
            .position(|f| f.name == "scale")
            .expect("scale");
        let twice = ws
            .fns
            .iter()
            .position(|f| f.name == "twice")
            .expect("twice");
        assert_eq!(
            callee_of(&ws, &cg, "entry", "util::scale"),
            &Callee::Resolved(vec![scale])
        );
        assert_eq!(
            callee_of(&ws, &cg, "entry", "crate::util::twice"),
            &Callee::Resolved(vec![twice])
        );
    }

    #[test]
    fn use_aliases_and_bare_names_resolve() {
        let (ws, cg) = graph_of(&[
            (
                "crates/app/src/lib.rs",
                "use crate::util::scale as sc;\n\
                 pub mod util;\n\
                 pub fn entry(x: u64) -> u64 { sc(x) + helper(x) }\n\
                 fn helper(x: u64) -> u64 { x }\n",
            ),
            (
                "crates/app/src/util.rs",
                "pub fn scale(x: u64) -> u64 { x }\n",
            ),
        ]);
        assert!(matches!(
            callee_of(&ws, &cg, "entry", "sc"),
            Callee::Resolved(_)
        ));
        assert!(matches!(
            callee_of(&ws, &cg, "entry", "helper"),
            Callee::Resolved(_)
        ));
    }

    #[test]
    fn std_paths_are_external_and_crate_rooted_misses_are_opaque() {
        let (ws, cg) = graph_of(&[(
            "crates/app/src/lib.rs",
            "pub fn entry() -> u64 {\n\
                 let v = std::cmp::min(1, 2);\n\
                 crate::missing::helper(v)\n\
             }\n",
        )]);
        assert_eq!(
            callee_of(&ws, &cg, "entry", "std::cmp::min"),
            &Callee::External
        );
        assert_eq!(
            callee_of(&ws, &cg, "entry", "crate::missing::helper"),
            &Callee::Opaque
        );
    }

    #[test]
    fn methods_resolve_to_union_of_impls() {
        let (ws, cg) = graph_of(&[(
            "crates/app/src/lib.rs",
            "pub struct A; pub struct B;\n\
             impl A { pub fn merge(&self) {} }\n\
             impl B { pub fn merge(&self) {} }\n\
             pub fn entry(a: &A) { a.merge(); a.push(1); }\n",
        )]);
        let Callee::Resolved(v) = callee_of(&ws, &cg, "entry", ".merge") else {
            panic!("expected resolved union");
        };
        assert_eq!(v.len(), 2);
        // `.push` has no workspace impl — std method.
        assert_eq!(callee_of(&ws, &cg, "entry", ".push"), &Callee::External);
    }

    #[test]
    fn test_and_bin_fns_are_not_candidates() {
        let (ws, cg) = graph_of(&[
            (
                "crates/app/src/lib.rs",
                "pub fn entry() { parse(); }\n\
                 #[cfg(test)]\nmod tests { fn parse() {} }\n",
            ),
            (
                "crates/app/src/bin/cli.rs",
                "fn parse() {}\nfn main() { parse(); }\n",
            ),
        ]);
        // The only non-test, non-bin `parse` is… nothing → external.
        assert_eq!(callee_of(&ws, &cg, "entry", "parse"), &Callee::External);
    }

    #[test]
    fn macros_and_struct_literals_are_not_calls() {
        let (ws, cg) = graph_of(&[(
            "crates/app/src/lib.rs",
            "pub fn entry() { format!(\"x\"); let _ = Some(1); if cond() {} }\n\
             fn cond() -> bool { true }\n",
        )]);
        let entry = ws
            .fns
            .iter()
            .position(|f| f.name == "entry")
            .expect("entry");
        let displays: Vec<&str> = cg.calls[entry].iter().map(|c| c.display.as_str()).collect();
        assert_eq!(displays, ["cond"]);
    }
}
