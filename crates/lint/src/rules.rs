//! The rule catalog and its enforcement pass.
//!
//! See the crate-level docs for the full rationale table. Each rule here
//! is scoped by [`FileClass`] (where in the workspace the file lives) and
//! by token-level test-region marking ([`mark_test_regions`]), so that
//! the exemptions the catalog promises — tests, benches, examples, the
//! CLI — are applied uniformly.

use crate::lexer::{lex, Tok, TokKind};

/// A rule identifier from the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No iteration over `HashMap`/`HashSet` in non-test library code.
    D01,
    /// No ambient entropy or wall-clock outside benches and the CLI.
    D02,
    /// No `==`/`!=` against float-typed operands.
    D03,
    /// No `unwrap()` / bare `expect("")` in non-test library code.
    D04,
    /// Seed literals only in tests/benches/examples.
    D05,
    /// No single RNG drawn from in two argument positions of one call.
    D08,
    /// Artifact writes go through `ldp_common::write_atomic`.
    D09,
    /// No `thread::spawn` outside the `map_trials*` internals and the
    /// stream coordinator.
    D10,
    /// Every crate root carries `#![forbid(unsafe_code)]`.
    H01,
    /// No `println!`/`eprintln!` outside the CLI, benches, and tests.
    H02,
    /// Functions reachable from the pure roots are transitively free of
    /// ambient state (cross-file pass, see [`crate::passes`]).
    P01,
    /// RNG stream discipline: no same-statement double feeds, stray
    /// clones, or closure captures into trial fan-outs (cross-file pass).
    P02,
}

impl RuleId {
    /// Every rule, in catalog order.
    pub const ALL: [RuleId; 12] = [
        RuleId::D01,
        RuleId::D02,
        RuleId::D03,
        RuleId::D04,
        RuleId::D05,
        RuleId::D08,
        RuleId::D09,
        RuleId::D10,
        RuleId::H01,
        RuleId::H02,
        RuleId::P01,
        RuleId::P02,
    ];

    /// The stable id string (`"D01"`, …) used in output and waivers.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D01 => "D01",
            RuleId::D02 => "D02",
            RuleId::D03 => "D03",
            RuleId::D04 => "D04",
            RuleId::D05 => "D05",
            RuleId::D08 => "D08",
            RuleId::D09 => "D09",
            RuleId::D10 => "D10",
            RuleId::H01 => "H01",
            RuleId::H02 => "H02",
            RuleId::P01 => "P01",
            RuleId::P02 => "P02",
        }
    }

    /// One-line summary for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D01 => "no HashMap/HashSet iteration in non-test library code",
            RuleId::D02 => "no ambient entropy or wall-clock outside benches and the CLI",
            RuleId::D03 => "no ==/!= on float-typed operands",
            RuleId::D04 => "no unwrap()/bare expect(\"\") in non-test library code",
            RuleId::D05 => "rng_from_seed(<literal>) only in tests/benches/examples",
            RuleId::D08 => "no single RNG drawn from in two argument positions of one call",
            RuleId::D09 => "artifact writes go through ldp_common::write_atomic",
            RuleId::D10 => "no thread::spawn outside map_trials* internals and the coordinator",
            RuleId::H01 => "crate roots must carry #![forbid(unsafe_code)]",
            RuleId::H02 => "no println!/eprintln! outside the CLI, benches, and tests",
            RuleId::P01 => "pure-root call closures stay transitively free of ambient state",
            RuleId::P02 => "RNG streams: no same-statement double feeds, clones, or captures",
        }
    }

    /// The full catalog rationale for `--explain` — why the rule exists
    /// and what the sanctioned alternative is.
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::D01 => {
                "Hash iteration order is nondeterministic across runs and platforms. One \
                 `for (k, _) in &map` feeding a draw loop desynchronizes every downstream \
                 RNG stream and breaks replay. Membership checks (contains/get/insert) stay \
                 legal — hash collections are fine as sets, not as iteration sources. Use a \
                 BTreeMap/BTreeSet or collect into a sorted Vec."
            }
            RuleId::D02 => {
                "Every random bit must flow from the master seed via rng_from_seed/\
                 derive_seed2, and nothing may observe real time — otherwise results stop \
                 being a pure function of (spec, seed) and the golden gates are meaningless. \
                 Benches and the CLI binary are the only places allowed to touch the \
                 outside world."
            }
            RuleId::D03 => {
                "Float equality is almost always a rounding-sensitive bug. Intentional \
                 exact comparison (sentinels, golden bit-compares) must go through \
                 ldp_common::float::{exact_eq, exactly_zero}, which documents the intent at \
                 the one blessed definition site."
            }
            RuleId::D04 => {
                "A library panic kills a whole shard worker mid-stream. The workspace \
                 contract is typed errors (LdpError) or graceful degradation \
                 (ArmOutcome::Degenerate); a justified .expect(\"<why this cannot fail>\") \
                 is allowed because the message is the proof obligation."
            }
            RuleId::D05 => {
                "Production paths must derive per-purpose streams via derive_seed2(master, \
                 …): a literal rng_from_seed(42) silently reuses one stream everywhere, \
                 collides shard/epoch/trial draws, and makes the seed impossible to vary \
                 from the CLI."
            }
            RuleId::D08 => {
                "Rust evaluates arguments left-to-right, so f(rng.draw(), rng.draw()) works \
                 — until a refactor reorders, splits, or lifts the arguments and silently \
                 reshuffles the consumed stream (and every downstream draw). Bind the draws \
                 to sequential `let`s, or derive independent streams via derive_seed2."
            }
            RuleId::D09 => {
                "A bare fs::write/File::create leaves a torn half-file on crash or \
                 SIGKILL, which the checkpoint-resume and golden machinery would then read \
                 as corrupt or — worse — silently truncated-but-parseable. \
                 ldp_common::write_atomic (temp file + rename in the target directory) \
                 makes every artifact either fully old or fully new. Tests and examples \
                 write scratch files and are exempt; write_atomic's own implementation and \
                 the lint crate's manifest writer are the blessed definition sites."
            }
            RuleId::D10 => {
                "Threading topology is part of the determinism argument: the workspace \
                 funnels all parallelism through map_trials/map_trials_with (which join in \
                 deterministic trial order) and the stream coordinator's process workers. \
                 A stray thread::spawn anywhere else introduces unaudited interleaving — \
                 route the work through the runner, or extend the audited surface \
                 deliberately."
            }
            RuleId::H01 => {
                "The workspace is pure safe Rust; #![forbid(unsafe_code)] turns that claim \
                 into a compile error, and this rule turns *removing the forbid* into a \
                 lint error."
            }
            RuleId::H02 => {
                "Library output must be returned (String/Table/JSON) so the CLI and bench \
                 binaries own the terminal; a stray println! corrupts --json emissions and \
                 interleaves nondeterministically under parallel trials."
            }
            RuleId::P01 => {
                "The cross-file purity pass: every function reachable from the declared \
                 pure roots (shard_epoch_delta, run_experiment, checkpoint encode/decode — \
                 see [[pure_root]] in lint_waivers.toml) must be transitively free of \
                 D02-class ambient sources, environment reads, and interior-mutable \
                 statics. Calls the conservative call graph cannot resolve are treated as \
                 impure; suppress a single edge with [[edge_waiver]] + justification."
            }
            RuleId::P02 => {
                "RNG stream discipline across the call graph: (a) one RNG feeding two \
                 calls in a single statement depends on evaluation order (the inter-call \
                 complement of D08); (b) cloning an RNG forks the stream into replayed \
                 draws — derive an independent stream via derive_seed2 (the η-sweep replay \
                 in runner.rs is the one blessed exception); (c) an RNG captured by a \
                 closure handed to map_trials/map_trials_with/thread::spawn draws in \
                 scheduler order — take the RNG as a closure parameter or derive a \
                 per-trial stream inside."
            }
        }
    }

    /// A known-bad example for `--explain`, straight from the fixture
    /// the test suite locks (`crates/lint/fixtures/bad/<id>.rs`).
    pub fn example_bad(self) -> &'static str {
        match self {
            RuleId::D01 => include_str!("../fixtures/bad/d01.rs"),
            RuleId::D02 => include_str!("../fixtures/bad/d02.rs"),
            RuleId::D03 => include_str!("../fixtures/bad/d03.rs"),
            RuleId::D04 => include_str!("../fixtures/bad/d04.rs"),
            RuleId::D05 => include_str!("../fixtures/bad/d05.rs"),
            RuleId::D08 => include_str!("../fixtures/bad/d08.rs"),
            RuleId::D09 => include_str!("../fixtures/bad/d09.rs"),
            RuleId::D10 => include_str!("../fixtures/bad/d10.rs"),
            RuleId::H01 => include_str!("../fixtures/bad/h01.rs"),
            RuleId::H02 => include_str!("../fixtures/bad/h02.rs"),
            RuleId::P01 => include_str!("../fixtures/bad/p01.rs"),
            RuleId::P02 => include_str!("../fixtures/bad/p02.rs"),
        }
    }

    /// The clean twin of [`RuleId::example_bad`]
    /// (`crates/lint/fixtures/good/<id>.rs`).
    pub fn example_good(self) -> &'static str {
        match self {
            RuleId::D01 => include_str!("../fixtures/good/d01.rs"),
            RuleId::D02 => include_str!("../fixtures/good/d02.rs"),
            RuleId::D03 => include_str!("../fixtures/good/d03.rs"),
            RuleId::D04 => include_str!("../fixtures/good/d04.rs"),
            RuleId::D05 => include_str!("../fixtures/good/d05.rs"),
            RuleId::D08 => include_str!("../fixtures/good/d08.rs"),
            RuleId::D09 => include_str!("../fixtures/good/d09.rs"),
            RuleId::D10 => include_str!("../fixtures/good/d10.rs"),
            RuleId::H01 => include_str!("../fixtures/good/h01.rs"),
            RuleId::H02 => include_str!("../fixtures/good/h02.rs"),
            RuleId::P01 => include_str!("../fixtures/good/p01.rs"),
            RuleId::P02 => include_str!("../fixtures/good/p02.rs"),
        }
    }

    /// Parses an id string (case-insensitive).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s.trim()))
    }
}

/// One diagnostic: `path:line:col: [ID] message` plus the offending line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, for display.
    pub source_line: String,
}

impl Finding {
    /// Renders the two-line diagnostic block.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    | {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.message,
            self.source_line.trim_end()
        )
    }
}

/// Where a file sits in the workspace — drives per-rule exemptions.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Under `crates/bench/` (criterion suites, figure binaries, gate).
    pub bench_crate: bool,
    /// A binary target: under `src/bin/` or a `src/main.rs`.
    pub bin: bool,
    /// An integration-test file (top-level `tests/` or `crates/*/tests/`).
    pub test_file: bool,
    /// Under an `examples/` directory.
    pub example: bool,
    /// A crate root (`src/lib.rs`) — the H01 surface.
    pub crate_root: bool,
    /// The one blessed exact-float-comparison site
    /// (`crates/common/src/float.rs`) — D03 does not apply there.
    pub float_blessed: bool,
}

impl FileClass {
    /// Classifies a workspace-relative, forward-slash path.
    pub fn classify(rel_path: &str) -> FileClass {
        let p = rel_path;
        FileClass {
            bench_crate: p.starts_with("crates/bench/"),
            bin: p.contains("/src/bin/") || p.ends_with("src/main.rs"),
            test_file: p.starts_with("tests/") || p.contains("/tests/"),
            example: p.starts_with("examples/") || p.contains("/examples/"),
            crate_root: p == "src/lib.rs"
                || (p.starts_with("crates/") && p.ends_with("/src/lib.rs")),
            float_blessed: p == "crates/common/src/float.rs",
        }
    }

    /// "Library code": not a test file, example, bench-crate file, or bin.
    pub(crate) fn library(&self) -> bool {
        !(self.test_file || self.example || self.bench_crate || self.bin)
    }
}

/// Marks every token that sits inside test-gated scope: an item under
/// `#[cfg(test)]` / `#[test]` / `#[bench]` (any attribute whose
/// identifier set contains `test` or `bench`), or a `mod` whose name
/// starts with `test`. Attribute → item association is brace-structural:
/// the pending flag applies until the item's `{` opens (marking the whole
/// block) or a `;`/`,`/`}` ends a braceless item (`use`, `struct S;`).
pub fn mark_test_regions(toks: &mut [Tok]) {
    let mut stack: Vec<bool> = Vec::new();
    let mut pending = false;
    let mut k = 0usize;
    while k < toks.len() {
        let parent = stack.last().copied().unwrap_or(false);
        // Outer attribute: consume `#[ … ]` atomically.
        if toks[k].is_punct("#") && k + 1 < toks.len() && toks[k + 1].is_punct("[") {
            let mut depth = 0usize;
            let mut has_test = false;
            let mut j = k + 1;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].kind == TokKind::Ident
                    && (toks[j].text == "test" || toks[j].text == "bench")
                {
                    has_test = true;
                }
                j += 1;
            }
            pending |= has_test;
            let marked = parent || pending;
            let end = j.min(toks.len() - 1);
            for t in toks[k..=end].iter_mut() {
                t.in_test = marked;
            }
            k = j + 1;
            continue;
        }
        // Inner attribute `#![ … ]`: skip atomically, no pending change.
        if toks[k].is_punct("#")
            && k + 2 < toks.len()
            && toks[k + 1].is_punct("!")
            && toks[k + 2].is_punct("[")
        {
            let mut depth = 0usize;
            let mut j = k + 2;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let end = j.min(toks.len() - 1);
            for t in toks[k..=end].iter_mut() {
                t.in_test = parent;
            }
            k = j + 1;
            continue;
        }
        // `mod test…` gates its block even without #[cfg(test)].
        if toks[k].is_ident("mod")
            && toks
                .get(k + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("test"))
        {
            pending = true;
        }
        toks[k].in_test = parent || pending;
        if toks[k].is_punct("{") {
            stack.push(parent || pending);
            pending = false;
        } else if toks[k].is_punct("}") {
            stack.pop();
            pending = false;
        } else if toks[k].is_punct(";") || toks[k].is_punct(",") {
            pending = false;
        }
        k += 1;
    }
}

/// Runs the whole local catalog over one file's source.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let class = FileClass::classify(rel_path);
    let mut toks = lex(src);
    mark_test_regions(&mut toks);
    lint_tokens(rel_path, &class, &toks, src)
}

/// Runs the local rules over pre-lexed tokens (with test regions already
/// marked) — the entry the cross-file analyzer uses so each file is
/// lexed exactly once. `src` supplies the quoted source lines.
pub fn lint_tokens(rel_path: &str, class: &FileClass, toks: &[Tok], src: &str) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out: Vec<Finding> = Vec::new();
    {
        let mut emit = |tok: &Tok, rule: RuleId, message: String| {
            let source_line = lines
                .get(tok.line as usize - 1)
                .map(|s| (*s).to_string())
                .unwrap_or_default();
            out.push(Finding {
                path: rel_path.to_string(),
                line: tok.line,
                col: tok.col,
                rule,
                message,
                source_line,
            });
        };
        rule_d01(class, toks, &mut emit);
        rule_d02(class, toks, &mut emit);
        rule_d03(class, toks, &mut emit);
        rule_d04(class, toks, &mut emit);
        rule_d05(class, toks, &mut emit);
        rule_d08(class, toks, &mut emit);
        rule_d09(class, toks, &mut emit, rel_path);
        rule_d10(class, toks, &mut emit, rel_path);
        rule_h01(class, toks, &mut emit, rel_path);
        rule_h02(class, toks, &mut emit);
    }
    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out
}

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// D01 — order-nondeterministic iteration over `HashMap`/`HashSet`.
///
/// Heuristic, file-local binding tracking: a name counts as hash-backed
/// when it is `let`-bound to a `HashMap`/`HashSet` constructor expression
/// or carries an explicit `: HashMap<…>`/`: HashSet<…>` ascription
/// (params, fields, lets). Flagged uses: `name.iter()` & friends
/// ([`ITER_METHODS`]) and `for … in [&[mut]] name {`. Membership checks
/// (`contains`, `insert`, `get`) stay legal — that is the point of the
/// rule: hash collections are fine as sets, not as iteration sources.
fn rule_d01(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if !class.library() {
        return;
    }
    // Pass 1: collect hash-backed binding names. Test-region bindings
    // are skipped — they cannot leak into library scope, and a test-only
    // `let names = HashSet::new()` must not taint an unrelated library
    // binding that happens to share the name.
    let mut bindings: Vec<String> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.in_test || !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut head = k;
        while head >= 2 && toks[head - 1].is_punct("::") && toks[head - 2].kind == TokKind::Ident {
            head -= 2;
        }
        if head == 0 {
            continue;
        }
        let before = &toks[head - 1];
        if before.is_punct("=") {
            // `let [mut] NAME = … HashMap::new()` — find the `let`.
            let mut j = head - 1;
            while j > 0 {
                j -= 1;
                let t = &toks[j];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                    break;
                }
                if t.is_ident("let") {
                    let mut n = j + 1;
                    if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                        n += 1;
                    }
                    if let Some(name) = toks.get(n).filter(|t| t.kind == TokKind::Ident) {
                        bindings.push(name.text.clone());
                    }
                    break;
                }
            }
        } else {
            // `NAME: [&[mut]] HashMap<…>` — param, field, or ascribed let.
            let mut b = head - 1;
            while b > 0 && (toks[b].is_punct("&") || toks[b].is_ident("mut")) {
                b -= 1;
            }
            if toks[b].is_punct(":") && b >= 1 && toks[b - 1].kind == TokKind::Ident {
                bindings.push(toks[b - 1].text.clone());
            }
        }
    }
    bindings.sort();
    bindings.dedup();
    // Pass 2: flag order-observing uses of tracked names.
    for (k, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let name_is_tracked = bindings.binary_search(&t.text).is_ok();
        if name_is_tracked
            && toks.get(k + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(k + 2)
                .is_some_and(|m| ITER_METHODS.iter().any(|im| m.is_ident(im)))
            && toks.get(k + 3).is_some_and(|t| t.is_punct("("))
        {
            let method = &toks[k + 2].text;
            emit(
                t,
                RuleId::D01,
                format!(
                    "`{}.{method}()` iterates a HashMap/HashSet in library code — order is \
                     nondeterministic; collect into a sorted Vec or use a BTreeMap/BTreeSet \
                     (membership checks are fine)",
                    t.text
                ),
            );
        }
        // `for PAT in [&[mut]] NAME {`
        if t.is_ident("in") {
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("&")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let (Some(name), Some(open)) = (toks.get(j), toks.get(j + 1)) else {
                continue;
            };
            if name.kind == TokKind::Ident
                && bindings.binary_search(&name.text).is_ok()
                && open.is_punct("{")
            {
                emit(
                    name,
                    RuleId::D01,
                    format!(
                        "`for … in {}` iterates a HashMap/HashSet in library code — order is \
                         nondeterministic; iterate a sorted Vec or a BTreeMap/BTreeSet instead",
                        name.text
                    ),
                );
            }
        }
    }
}

/// D02 — ambient entropy / wall-clock. The draw-for-draw differential
/// gates only hold when every random bit flows from the master seed and
/// nothing observes real time; `crates/bench` and binary targets (the
/// CLI) are the only places allowed to touch the outside world.
fn rule_d02(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if class.bench_crate || class.bin {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let banned = match t.text.as_str() {
            "thread_rng" | "OsRng" | "from_entropy" => true,
            "random" => k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].is_ident("rand"),
            _ => false,
        };
        if banned {
            emit(
                t,
                RuleId::D02,
                format!(
                    "`{}` is an ambient entropy source — all randomness must derive from the \
                     master seed via rng_from_seed/derive_seed2",
                    t.text
                ),
            );
            continue;
        }
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && toks.get(k + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(k + 2).is_some_and(|t| t.is_ident("now"))
        {
            emit(
                t,
                RuleId::D02,
                format!(
                    "`{}::now()` reads the wall-clock — deterministic code must not observe \
                     real time (benches and the CLI are exempt)",
                    t.text
                ),
            );
        }
    }
}

/// D03 — `==`/`!=` with a float-typed operand. Detection is heuristic
/// (the lexer has no types): an operand is float-typed when it is a float
/// literal or an `as f64`/`as f32` cast. Intentional exact comparison
/// goes through `ldp_common::float` (the one blessed definition site).
fn rule_d03(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if class.test_file || class.example || class.bench_crate || class.float_blessed {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || t.in_test {
            continue;
        }
        let left_float = k >= 1 && toks[k - 1].kind == TokKind::Float
            || (k >= 2
                && toks[k - 2].is_ident("as")
                && (toks[k - 1].is_ident("f64") || toks[k - 1].is_ident("f32")));
        let right_float = toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Float);
        if left_float || right_float {
            emit(
                t,
                RuleId::D03,
                format!(
                    "`{}` on a float-typed operand — use ldp_common::float::exact_eq/\
                     exactly_zero for intentional exact comparison, or an epsilon band",
                    t.text
                ),
            );
        }
    }
}

/// D04 — `unwrap()` / bare `expect("")` in non-test library code. The
/// streaming/defense contracts degrade (`ArmOutcome::Degenerate`) or
/// propagate typed errors; a library panic kills a whole shard worker.
fn rule_d04(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if !class.library() {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.in_test || k == 0 || !toks[k - 1].is_punct(".") {
            continue;
        }
        if t.is_ident("unwrap")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(")"))
        {
            emit(
                t,
                RuleId::D04,
                "`.unwrap()` in library code — return a typed error (`ldp_common::LdpError`) \
                 or use `.expect(\"<why this cannot fail>\")`"
                    .to_string(),
            );
        }
        if t.is_ident("expect")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
            && toks
                .get(k + 2)
                .is_some_and(|t| matches!(t.kind, TokKind::Str { empty: true }))
        {
            emit(
                t,
                RuleId::D04,
                "bare `.expect(\"\")` in library code — the message must state why the value \
                 is guaranteed present"
                    .to_string(),
            );
        }
    }
}

/// D05 — literal seeds in production paths. Every production RNG stream
/// must be derived from the run's master seed via `derive_seed2` so that
/// shard/epoch/trial streams never collide; a hard-coded
/// `rng_from_seed(42)` silently reuses one stream everywhere.
fn rule_d05(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if class.test_file || class.example || class.bench_crate {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_ident("rng_from_seed") {
            continue;
        }
        if toks.get(k + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Int)
            && toks.get(k + 3).is_some_and(|t| t.is_punct(")"))
        {
            emit(
                t,
                RuleId::D05,
                format!(
                    "`rng_from_seed({})` hard-codes a seed in a production path — derive the \
                     stream from the master seed via derive_seed2",
                    toks[k + 2].text
                ),
            );
        }
    }
}

/// D08 — RNG argument ordering. One RNG drawn from in two (or more)
/// argument positions of a single call, e.g.
/// `combine(sample(a, &mut rng), sample(b, &mut rng))`, makes the
/// consumed stream depend on argument evaluation order — defined today,
/// but silently reshuffled by any refactor that reorders, splits, or
/// lifts the arguments, which perturbs every downstream draw.
///
/// Heuristic (the lexer has no types): an RNG use is `&mut <ident>` or a
/// `<ident>.method(` receiver where the identifier contains `rng`. Each
/// use is attributed to every enclosing parenthesized group at that
/// group's current top-level argument index (commas inside nested
/// `()`/`[]`/`{}` don't count); a group fires when one name lands in ≥ 2
/// distinct argument slots. Nested duplicates inside a *single* argument
/// therefore flag at the inner call only. The fix is sequential `let`
/// bindings (explicit order) or independent streams via `derive_seed2`.
fn rule_d08(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if !class.library() {
        return;
    }
    /// One delimiter on the nesting stack; only `(` groups track args.
    struct Group {
        paren: bool,
        arg: usize,
        /// `(rng name, argument slot, token index of the use)`.
        uses: Vec<(String, usize, usize)>,
    }
    let looks_like_rng =
        |t: &Tok| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("rng");
    let mut stack: Vec<Group> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            stack.push(Group {
                paren: t.is_punct("("),
                arg: 0,
                uses: Vec::new(),
            });
            continue;
        }
        if t.is_punct(",") {
            if let Some(g) = stack.last_mut().filter(|g| g.paren) {
                g.arg += 1;
            }
            continue;
        }
        if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            let Some(group) = stack.pop() else { continue };
            if !group.paren {
                continue;
            }
            // Each distinct name fires at most once per group.
            let mut names: Vec<&str> = group.uses.iter().map(|(n, _, _)| n.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            for name in names {
                let mut slots: Vec<usize> = group
                    .uses
                    .iter()
                    .filter(|(n, _, _)| n == name)
                    .map(|(_, slot, _)| *slot)
                    .collect();
                slots.sort_unstable();
                slots.dedup();
                if slots.len() >= 2 {
                    let first = group
                        .uses
                        .iter()
                        .find(|(n, _, _)| n == name)
                        .map(|&(_, _, idx)| idx)
                        .unwrap_or(k);
                    emit(
                        &toks[first],
                        RuleId::D08,
                        format!(
                            "`{name}` is drawn from in {} argument positions of one call — \
                             the consumed RNG stream then depends on argument evaluation \
                             order; bind the draws to sequential `let`s or derive independent \
                             streams via derive_seed2",
                            slots.len()
                        ),
                    );
                }
            }
            continue;
        }
        if t.in_test {
            continue;
        }
        // `&mut rng` or `rng.method(` — attribute to every open paren group.
        let is_mut_borrow = t.is_punct("&")
            && toks.get(k + 1).is_some_and(|t| t.is_ident("mut"))
            && toks.get(k + 2).is_some_and(&looks_like_rng);
        let is_receiver = looks_like_rng(t)
            && toks.get(k + 1).is_some_and(|t| t.is_punct("."))
            && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(k + 3).is_some_and(|t| t.is_punct("("));
        let name = if is_mut_borrow {
            toks[k + 2].text.clone()
        } else if is_receiver {
            t.text.clone()
        } else {
            continue;
        };
        for g in stack.iter_mut().filter(|g| g.paren) {
            g.uses.push((name.clone(), g.arg, k));
        }
    }
}

/// Files allowed to create/write files directly: the `write_atomic`
/// implementation itself, and the lint crate's own manifest writer
/// (which cannot depend on `ldp_common` and carries its own
/// temp-and-rename).
const D09_BLESSED: [&str; 2] = ["crates/common/src/json.rs", "crates/lint/src/goldens.rs"];

/// D09 — artifact writes must go through `ldp_common::write_atomic`. A
/// bare `fs::write`/`File::create` leaves a torn half-file on crash,
/// which checkpoint-resume and the golden gates would read as corrupt
/// (or worse, truncated-but-parseable). Unlike most rules this one
/// applies to binaries and `crates/bench` too — the CLI and the bench
/// gate are exactly where artifacts get written.
fn rule_d09(
    class: &FileClass,
    toks: &[Tok],
    emit: &mut impl FnMut(&Tok, RuleId, String),
    rel_path: &str,
) {
    if class.test_file || class.example || D09_BLESSED.contains(&rel_path) {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident || k < 2 {
            continue;
        }
        if !toks.get(k + 1).is_some_and(|n| n.is_punct("(")) || !toks[k - 1].is_punct("::") {
            continue;
        }
        let head = &toks[k - 2];
        let writes = (head.is_ident("fs") && (t.text == "write" || t.text == "copy"))
            || (head.is_ident("File") && (t.text == "create" || t.text == "create_new"));
        if writes {
            emit(
                t,
                RuleId::D09,
                format!(
                    "`{}::{}` writes a file non-atomically — a crash mid-write leaves a \
                     torn artifact; route it through ldp_common::write_atomic (temp file \
                     + rename)",
                    head.text, t.text
                ),
            );
        }
    }
}

/// Files allowed to spawn threads/processes: the trial fan-out
/// internals and the multi-process stream coordinator.
const D10_ALLOWED: [&str; 2] = [
    "crates/sim/src/runner.rs",
    "crates/sim/src/stream/coordinator.rs",
];

/// D10 — thread-spawn audit. All parallelism must flow through the
/// audited surfaces (`map_trials*`, the stream coordinator) whose join
/// order is deterministic; any other `thread::spawn` / `.spawn(` is
/// unaudited interleaving. Deliberately fires in tests and binaries
/// too: the audit is about topology, not output.
fn rule_d10(
    class: &FileClass,
    toks: &[Tok],
    emit: &mut impl FnMut(&Tok, RuleId, String),
    rel_path: &str,
) {
    let _ = class;
    if D10_ALLOWED.contains(&rel_path) {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !t.is_ident("spawn")
            || !toks.get(k + 1).is_some_and(|n| n.is_punct("("))
            || k == 0
        {
            continue;
        }
        let path_spawn = k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].is_ident("thread");
        let method_spawn = toks[k - 1].is_punct(".");
        if path_spawn || method_spawn {
            emit(
                t,
                RuleId::D10,
                "thread/process spawn outside the audited surface (map_trials* internals, \
                 stream/coordinator.rs) — route parallel work through the runner, or \
                 extend the audited file list deliberately"
                    .to_string(),
            );
        }
    }
}

/// H01 — crate roots must carry `#![forbid(unsafe_code)]`.
fn rule_h01(
    class: &FileClass,
    toks: &[Tok],
    emit: &mut impl FnMut(&Tok, RuleId, String),
    rel_path: &str,
) {
    if !class.crate_root {
        return;
    }
    let found = toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    });
    if !found {
        let anchor = Tok {
            kind: TokKind::Punct,
            text: String::new(),
            line: 1,
            col: 1,
            in_test: false,
        };
        emit(
            &anchor,
            RuleId::H01,
            format!("crate root {rel_path} is missing `#![forbid(unsafe_code)]`"),
        );
    }
}

/// H02 — stray stdout/stderr. Library code renders to `String`/`Table`
/// and lets the CLI / bench binaries decide what reaches a terminal.
fn rule_h02(class: &FileClass, toks: &[Tok], emit: &mut impl FnMut(&Tok, RuleId, String)) {
    if class.bench_crate || class.bin || class.test_file || class.example {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "println" || t.text == "eprintln")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("!"))
        {
            emit(
                t,
                RuleId::H02,
                format!(
                    "`{}!` in library code — render to a String (e.g. \
                     ScenarioReport::render_text) and let the CLI print",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_on(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        lint_file(path, src)
            .into_iter()
            .map(|f| (f.line, f.rule.id()))
            .collect()
    }

    const LIB: &str = "crates/demo/src/x.rs";

    #[test]
    fn cfg_test_scope_exempts_unwrap_and_prints() {
        let src = "pub fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { Some(1).unwrap(); println!(\"x\"); }\n\
                   }\n";
        assert!(rules_on(LIB, src).is_empty());
    }

    #[test]
    fn test_attr_on_fn_exempts_body() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\n";
        assert!(rules_on(LIB, src).is_empty());
    }

    #[test]
    fn entropy_fires_even_in_test_code() {
        // D02 is deliberately NOT test-exempt: the differential suites
        // only mean something if the tests themselves are deterministic.
        let src = "#[cfg(test)]\nuse rand::thread_rng;\n";
        assert_eq!(rules_on(LIB, src), [(2, "D02")]);
    }

    #[test]
    fn library_unwrap_fires_and_bin_is_exempt() {
        let src = "pub fn f() { Some(1).unwrap(); }\n";
        assert_eq!(rules_on(LIB, src), [(1, "D04")]);
        assert!(rules_on("crates/sim/src/bin/ldp.rs", src).is_empty());
    }

    #[test]
    fn bare_expect_fires_but_justified_expect_passes() {
        let bare = "pub fn f() { Some(1).expect(\"\"); }\n";
        let just = "pub fn f() { Some(1).expect(\"always present: seeded above\"); }\n";
        assert_eq!(rules_on(LIB, bare), [(1, "D04")]);
        assert!(rules_on(LIB, just).is_empty());
    }

    #[test]
    fn hashmap_iteration_fires_membership_does_not() {
        let bad = "pub fn f() {\n\
                       let mut m = std::collections::HashMap::new();\n\
                       m.insert(1, 2);\n\
                       for (k, v) in &m { let _ = (k, v); }\n\
                   }\n";
        assert_eq!(rules_on(LIB, bad), [(4, "D01")]);
        let ok = "pub fn f() {\n\
                      let mut s = std::collections::HashSet::new();\n\
                      s.insert(1);\n\
                      let _ = s.contains(&1);\n\
                  }\n";
        assert!(rules_on(LIB, ok).is_empty());
    }

    #[test]
    fn test_only_hash_binding_does_not_taint_library_names() {
        // A library Vec named `names` iterated normally, plus a test-only
        // HashSet that shares the name: no finding.
        let src = "pub fn f() -> usize {\n\
                       let names: Vec<u32> = vec![1, 2];\n\
                       names.into_iter().count()\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() {\n\
                           let mut names = std::collections::HashSet::new();\n\
                           names.insert(1);\n\
                           for n in &names { let _ = n; }\n\
                       }\n\
                   }\n";
        assert!(rules_on(LIB, src).is_empty());
    }

    #[test]
    fn ascribed_param_iteration_fires() {
        let src = "pub fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                       m.keys().copied().collect()\n\
                   }\n";
        assert_eq!(rules_on(LIB, src), [(2, "D01")]);
    }

    #[test]
    fn entropy_and_wall_clock_fire_outside_bench() {
        let src = "pub fn f() { let _ = rand::thread_rng(); }\n\
                   pub fn g() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(rules_on(LIB, src), [(1, "D02"), (2, "D02")]);
        assert!(rules_on("crates/bench/src/timing.rs", src).is_empty());
    }

    #[test]
    fn float_equality_fires_int_does_not() {
        assert_eq!(
            rules_on(LIB, "pub fn f(x: f64) -> bool { x == 0.0 }\n"),
            [(1, "D03")]
        );
        assert_eq!(
            rules_on(LIB, "pub fn f(x: u32) -> bool { x as f64 != 1.0 }\n"),
            [(1, "D03")]
        );
        assert!(rules_on(LIB, "pub fn f(x: u32) -> bool { x == 0 }\n").is_empty());
        assert!(rules_on(
            "crates/common/src/float.rs",
            "pub fn eq(a: f64, b: f64) -> bool { a == 0.0 }\n"
        )
        .is_empty());
    }

    #[test]
    fn seed_literal_fires_derived_seed_does_not() {
        assert_eq!(
            rules_on(LIB, "pub fn f() { let _ = rng_from_seed(42); }\n"),
            [(1, "D05")]
        );
        assert!(rules_on(
            LIB,
            "pub fn f(master: u64) { let _ = rng_from_seed(derive_seed2(master, 1, 2)); }\n"
        )
        .is_empty());
    }

    #[test]
    fn rng_in_two_argument_slots_fires() {
        // Two nested draws in distinct argument positions: the outer call
        // observes evaluation order.
        let src = "pub fn f(rng: &mut R) -> u64 {\n\
                       combine(sample(a, &mut rng), sample(b, &mut rng))\n\
                   }\n";
        assert_eq!(rules_on(LIB, src), [(2, "D08")]);
        // Receiver-position draws count too.
        let src = "pub fn f(rng: &mut R) -> (u64, u64) {\n\
                       pair(rng.next_u64(), rng.next_u64())\n\
                   }\n";
        assert_eq!(rules_on(LIB, src), [(2, "D08")]);
        // Binary targets and tests are exempt.
        assert!(rules_on(
            "crates/sim/src/bin/ldp.rs",
            "pub fn f(rng: &mut R) { g(h(&mut rng), h(&mut rng)); }\n"
        )
        .is_empty());
        assert!(rules_on(LIB, "#[test]\nfn t() { g(h(&mut rng), h(&mut rng)); }\n").is_empty());
    }

    #[test]
    fn rng_duplicates_inside_one_argument_flag_the_inner_call_only() {
        // Both draws sit in argument 0 of the outer call, so only the
        // inner group (where they occupy two slots) fires.
        let src = "pub fn f(rng: &mut R) -> u64 {\n\
                       outer(inner(&mut rng, &mut rng))\n\
                   }\n";
        assert_eq!(rules_on(LIB, src), [(2, "D08")]);
    }

    #[test]
    fn sequential_and_distinct_rng_use_is_clean() {
        // Sequential lets make the order explicit.
        let ordered = "pub fn f(rng: &mut R) -> u64 {\n\
                           let x = sample(a, &mut rng);\n\
                           let y = sample(b, &mut rng);\n\
                           combine(x, y)\n\
                       }\n";
        assert!(rules_on(LIB, ordered).is_empty());
        // Two *different* RNGs in one call are fine.
        let distinct = "pub fn f(a_rng: &mut R, b_rng: &mut R) -> u64 {\n\
                            combine(sample(&mut a_rng), sample(&mut b_rng))\n\
                        }\n";
        assert!(rules_on(LIB, distinct).is_empty());
        // Commas inside nested braces don't split argument slots.
        let braced = "pub fn f(rng: &mut R) -> S {\n\
                          build(S { a: 1, b: 2 }, &mut rng)\n\
                      }\n";
        assert!(rules_on(LIB, braced).is_empty());
        // Non-RNG identifiers are outside the rule's scope.
        let vecs = "pub fn f(v: &mut Vec<u32>) { g(fill(&mut v), fill(&mut v)); }\n";
        assert!(rules_on(LIB, vecs).is_empty());
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        assert_eq!(
            rules_on("crates/demo/src/lib.rs", "//! Docs.\npub fn f() {}\n"),
            [(1, "H01")]
        );
        assert!(rules_on(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
        // Non-roots are not checked.
        assert!(rules_on(LIB, "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn println_fires_in_library_only() {
        let src = "pub fn f() { println!(\"x\"); }\n";
        assert_eq!(rules_on(LIB, src), [(1, "H02")]);
        assert!(rules_on("crates/sim/src/bin/ldp.rs", src).is_empty());
        assert!(rules_on("tests/foo.rs", src).is_empty());
        assert!(rules_on("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn bare_writes_fire_and_blessed_sites_are_exempt() {
        let src = "pub fn save(p: &std::path::Path, s: &str) {\n\
                       std::fs::write(p, s).ok();\n\
                       let _ = std::fs::File::create(p);\n\
                   }\n";
        assert_eq!(rules_on(LIB, src), [(2, "D09"), (3, "D09")]);
        // Bins and the bench crate DO get checked — artifacts are
        // written exactly there.
        assert_eq!(
            rules_on("crates/bench/src/bin/bench_gate.rs", src),
            [(2, "D09"), (3, "D09")]
        );
        // Tests, test regions, and the two blessed impl sites are exempt.
        assert!(rules_on("crates/sim/tests/golden.rs", src).is_empty());
        assert!(rules_on(LIB, "#[test]\nfn t() { std::fs::write(p, s).ok(); }\n").is_empty());
        assert!(rules_on("crates/common/src/json.rs", src).is_empty());
        assert!(rules_on("crates/lint/src/goldens.rs", src).is_empty());
    }

    #[test]
    fn fs_copy_counts_as_a_write() {
        let src = "pub fn promote(a: &P, b: &P) { std::fs::copy(a, b).ok(); }\n";
        assert_eq!(rules_on(LIB, src), [(1, "D09")]);
    }

    #[test]
    fn spawn_fires_everywhere_except_the_audited_files() {
        let src = "pub fn go() {\n\
                       std::thread::spawn(|| {});\n\
                       let _ = scope.spawn(|| {});\n\
                   }\n";
        assert_eq!(rules_on(LIB, src), [(2, "D10"), (3, "D10")]);
        // D10 deliberately fires in tests and bins too.
        assert_eq!(
            rules_on(LIB, "#[test]\nfn t() { std::thread::spawn(|| {}); }\n"),
            [(2, "D10")]
        );
        assert!(rules_on("crates/sim/src/runner.rs", src).is_empty());
        assert!(rules_on("crates/sim/src/stream/coordinator.rs", src).is_empty());
        // A fn *named* spawn, called bare, is not a spawn site.
        assert!(rules_on(LIB, "pub fn go() { spawn(); }\nfn spawn() {}\n").is_empty());
    }

    #[test]
    fn every_rule_has_a_nonempty_explanation_and_example_pair() {
        for rule in RuleId::ALL {
            assert!(
                !rule.rationale().trim().is_empty(),
                "{} has no rationale",
                rule.id()
            );
            assert!(
                !rule.example_bad().trim().is_empty(),
                "{} has no bad example",
                rule.id()
            );
            assert!(
                !rule.example_good().trim().is_empty(),
                "{} has no good example",
                rule.id()
            );
            assert!(
                !rule.summary().trim().is_empty(),
                "{} has no summary",
                rule.id()
            );
        }
    }

    #[test]
    fn banned_names_in_strings_and_comments_are_ignored() {
        let src = "// thread_rng in a comment\n\
                   pub fn f() -> &'static str { \"SystemTime::now unwrap()\" }\n";
        assert!(rules_on(LIB, src).is_empty());
    }
}
