//! The `ldp-lint` binary: scans the workspace, prints findings as
//! `path:line:col: [ID] message` (with the offending line) or as a
//! SARIF 2.1.0 document (`--format sarif`), and — with `--check-waivers`
//! — validates waiver and edge-waiver freshness. See the library docs
//! for the rule catalog; `--explain <RULE>` prints one rule's full
//! catalog entry with its bad/good fixture pair.

use std::path::PathBuf;
use std::process::ExitCode;

use ldp_lint::{
    bless_goldens, check_edge_waivers, check_goldens, check_waivers, discover_current_pr,
    lint_workspace, load_config, render_sarif, RuleId, GOLDEN_MANIFEST,
};

const USAGE: &str = "\
ldp-lint — workspace determinism & hygiene lints

USAGE: ldp-lint [OPTIONS]

OPTIONS:
    --deny             exit non-zero when any unwaived finding remains
    --check-waivers    fail on stale or unused lint_waivers.toml entries
                       (both [[waiver]] and [[edge_waiver]])
    --check-goldens    fail when a blessed golden/trajectory file drifted
                       from golden.manifest
    --bless-goldens    regenerate golden.manifest from the tree and exit
    --format <FMT>     finding output: text (default) or sarif; sarif goes
                       to stdout, diagnostics and the summary to stderr
    --explain <RULE>   print a rule's full catalog entry (rationale plus
                       the bad/good fixture pair) and exit
    --root <DIR>       workspace root (default: current directory)
    --waivers <FILE>   waiver file (default: <root>/lint_waivers.toml)
    --pr <N>           current PR number (default: derived from CHANGES.md)
    --list-rules       print the rule catalog and exit
    --help             print this help
";

enum Format {
    Text,
    Sarif,
}

struct Args {
    deny: bool,
    check_waivers: bool,
    check_goldens: bool,
    bless_goldens: bool,
    format: Format,
    explain: Option<String>,
    root: PathBuf,
    waivers: Option<PathBuf>,
    pr: Option<u32>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        check_waivers: false,
        check_goldens: false,
        bless_goldens: false,
        format: Format::Text,
        explain: None,
        root: PathBuf::from("."),
        waivers: None,
        pr: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--check-waivers" => args.check_waivers = true,
            "--check-goldens" => args.check_goldens = true,
            "--bless-goldens" => args.bless_goldens = true,
            "--list-rules" => args.list_rules = true,
            "--format" => {
                let v = it.next().ok_or("--format needs a value (text|sarif)")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("--format: unknown format `{other}`")),
                };
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id")?);
            }
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--waivers" => {
                args.waivers = Some(PathBuf::from(it.next().ok_or("--waivers needs a value")?));
            }
            "--pr" => {
                let v = it.next().ok_or("--pr needs a value")?;
                args.pr = Some(v.parse().map_err(|_| format!("--pr: bad number `{v}`"))?);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn explain(rule: RuleId) {
    println!("[{}] {}", rule.id(), rule.summary());
    println!();
    println!("{}", rule.rationale());
    println!();
    println!("--- known-bad (fires the rule) ---");
    print!("{}", rule.example_bad());
    println!("--- known-good twin (lints clean) ---");
    print!("{}", rule.example_good());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &args.explain {
        return match RuleId::parse(id) {
            Some(rule) => {
                explain(rule);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("ldp-lint: unknown rule `{id}` (try --list-rules)");
                ExitCode::from(2)
            }
        };
    }
    if args.list_rules {
        println!("ldp-lint rule catalog:");
        for rule in RuleId::ALL {
            println!("  [{}] {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }
    if !args.root.join("Cargo.toml").exists() || !args.root.join("crates").is_dir() {
        eprintln!(
            "ldp-lint: `{}` does not look like the workspace root (no Cargo.toml/crates); \
             run from the repo root or pass --root",
            args.root.display()
        );
        return ExitCode::from(2);
    }
    if args.bless_goldens {
        return match bless_goldens(&args.root) {
            Ok(n) => {
                println!("ldp-lint: blessed {n} file(s) into {GOLDEN_MANIFEST}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ldp-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let waiver_path = args
        .waivers
        .clone()
        .unwrap_or_else(|| args.root.join("lint_waivers.toml"));
    let config = match load_config(&waiver_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // In SARIF mode stdout is the document; everything human-facing
    // (findings as text, waiver errors, the summary) moves to stderr so
    // `ldp-lint --format sarif > lint.sarif` stays parseable.
    match args.format {
        Format::Text => {
            for finding in &report.findings {
                println!("{}", finding.render());
            }
        }
        Format::Sarif => {
            print!("{}", render_sarif(&report.findings));
            for finding in &report.findings {
                eprintln!("{}", finding.render());
            }
        }
    }
    let diag = |line: &str| match args.format {
        Format::Text => println!("{line}"),
        Format::Sarif => eprintln!("{line}"),
    };
    let mut failed = false;
    if args.check_waivers {
        let current_pr = args.pr.or_else(|| discover_current_pr(&args.root));
        let mut errors = check_waivers(&config.waivers, &report.suppressed, current_pr);
        errors.extend(check_edge_waivers(
            &config.edge_waivers,
            &report.edge_waivers_used,
            current_pr,
        ));
        for e in &errors {
            diag(&format!("ldp-lint: {e}"));
        }
        failed |= !errors.is_empty();
    }
    if args.check_goldens {
        match check_goldens(&args.root) {
            Ok(errors) => {
                for e in &errors {
                    diag(&format!("ldp-lint: {e}"));
                }
                failed |= !errors.is_empty();
            }
            Err(e) => {
                eprintln!("ldp-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    diag(&format!(
        "ldp-lint: {} finding(s) ({} waived) across {} files, {} waiver(s) + {} edge waiver(s) on file",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned,
        config.waivers.len(),
        config.edge_waivers.len()
    ));
    failed |= args.deny && !report.findings.is_empty();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
