//! The `ldp-lint` binary: scans the workspace, prints findings as
//! `path:line:col: [ID] message` (with the offending line), and — with
//! `--check-waivers` — validates waiver freshness. See the library docs
//! for the rule catalog.

use std::path::PathBuf;
use std::process::ExitCode;

use ldp_lint::{
    bless_goldens, check_goldens, check_waivers, discover_current_pr, lint_workspace, load_waivers,
    RuleId, GOLDEN_MANIFEST,
};

const USAGE: &str = "\
ldp-lint — workspace determinism & hygiene lints

USAGE: ldp-lint [OPTIONS]

OPTIONS:
    --deny             exit non-zero when any unwaived finding remains
    --check-waivers    fail on stale or unused lint_waivers.toml entries
    --check-goldens    fail when a blessed golden/trajectory file drifted
                       from golden.manifest
    --bless-goldens    regenerate golden.manifest from the tree and exit
    --root <DIR>       workspace root (default: current directory)
    --waivers <FILE>   waiver file (default: <root>/lint_waivers.toml)
    --pr <N>           current PR number (default: derived from CHANGES.md)
    --list-rules       print the rule catalog and exit
    --help             print this help
";

struct Args {
    deny: bool,
    check_waivers: bool,
    check_goldens: bool,
    bless_goldens: bool,
    root: PathBuf,
    waivers: Option<PathBuf>,
    pr: Option<u32>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        check_waivers: false,
        check_goldens: false,
        bless_goldens: false,
        root: PathBuf::from("."),
        waivers: None,
        pr: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--check-waivers" => args.check_waivers = true,
            "--check-goldens" => args.check_goldens = true,
            "--bless-goldens" => args.bless_goldens = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--waivers" => {
                args.waivers = Some(PathBuf::from(it.next().ok_or("--waivers needs a value")?));
            }
            "--pr" => {
                let v = it.next().ok_or("--pr needs a value")?;
                args.pr = Some(v.parse().map_err(|_| format!("--pr: bad number `{v}`"))?);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        println!("ldp-lint rule catalog:");
        for rule in RuleId::ALL {
            println!("  [{}] {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }
    if !args.root.join("Cargo.toml").exists() || !args.root.join("crates").is_dir() {
        eprintln!(
            "ldp-lint: `{}` does not look like the workspace root (no Cargo.toml/crates); \
             run from the repo root or pass --root",
            args.root.display()
        );
        return ExitCode::from(2);
    }
    if args.bless_goldens {
        return match bless_goldens(&args.root) {
            Ok(n) => {
                println!("ldp-lint: blessed {n} file(s) into {GOLDEN_MANIFEST}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ldp-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let waiver_path = args
        .waivers
        .clone()
        .unwrap_or_else(|| args.root.join("lint_waivers.toml"));
    let waivers = match load_waivers(&waiver_path) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&args.root, &waivers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ldp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    let mut failed = false;
    if args.check_waivers {
        let current_pr = args.pr.or_else(|| discover_current_pr(&args.root));
        let errors = check_waivers(&waivers, &report.suppressed, current_pr);
        for e in &errors {
            println!("ldp-lint: {e}");
        }
        failed |= !errors.is_empty();
    }
    if args.check_goldens {
        match check_goldens(&args.root) {
            Ok(errors) => {
                for e in &errors {
                    println!("ldp-lint: {e}");
                }
                failed |= !errors.is_empty();
            }
            Err(e) => {
                eprintln!("ldp-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "ldp-lint: {} finding(s) ({} waived) across {} files, {} waiver(s) on file",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned,
        waivers.len()
    );
    failed |= args.deny && !report.findings.is_empty();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
