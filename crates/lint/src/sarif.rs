//! Hand-rolled SARIF 2.1.0 emitter for `--format sarif`.
//!
//! SARIF (Static Analysis Results Interchange Format) is what CI-side
//! annotators consume — `github/codeql-action/upload-sarif` turns each
//! `result` into an inline PR annotation. The emitter is written by
//! hand (same dependency-free ethos as the rest of the crate) and
//! produces the minimal conforming document: one `run`, the full rule
//! catalog under `tool.driver.rules`, and one `result` per finding with
//! a `physicalLocation` region.
//!
//! The contract the `self_lint` suite locks: the SARIF document carries
//! **exactly the finding multiset** of the text renderer — same
//! (path, line, column, rule, message) tuples, nothing added, nothing
//! dropped.

use crate::rules::{Finding, RuleId};

/// Renders findings as a SARIF 2.1.0 JSON document (pretty-printed,
/// trailing newline).
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"ldp-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/ldprecover-repro\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.into_iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": {},\n", quote(rule.id())));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }},\n",
            quote(rule.summary())
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": {} }}\n",
            quote(rule.rationale())
        ));
        out.push_str(if i + 1 < RuleId::ALL.len() {
            "            },\n"
        } else {
            "            }\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", quote(f.rule.id())));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            quote(&f.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {} }},\n",
            quote(&f.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n",
            f.line, f.col
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 < findings.len() {
            "        },\n"
        } else {
            "        }\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// JSON string quoting with the mandatory escapes (`"`, `\`, control
/// characters as `\uXXXX`).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, col: u32, rule: RuleId, message: &str) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            col,
            rule,
            message: message.to_string(),
            source_line: String::new(),
        }
    }

    #[test]
    fn document_carries_every_finding_and_the_rule_catalog() {
        let findings = vec![
            finding("crates/a/src/x.rs", 3, 7, RuleId::D01, "iterates a map"),
            finding("src/lib.rs", 1, 1, RuleId::P01, "quote \" and \\ slash"),
        ];
        let doc = render_sarif(&findings);
        assert!(doc.contains("\"version\": \"2.1.0\""));
        for rule in RuleId::ALL {
            assert!(
                doc.contains(&format!("\"id\": \"{}\"", rule.id())),
                "catalog is missing {}",
                rule.id()
            );
        }
        assert!(doc.contains("\"uri\": \"crates/a/src/x.rs\""));
        assert!(doc.contains("\"startLine\": 3, \"startColumn\": 7"));
        assert!(doc.contains("quote \\\" and \\\\ slash"), "escaping holds");
    }

    #[test]
    fn empty_findings_still_render_a_valid_shell() {
        let doc = render_sarif(&[]);
        assert!(doc.contains("\"results\": [\n      ]"));
        assert!(doc.ends_with("}\n"));
    }
}
