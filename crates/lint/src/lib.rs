#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `ldp-lint` — workspace determinism & hygiene lints the compiler and
//! clippy cannot express.
//!
//! The reproduction's whole value rests on bit-exact determinism: the
//! differential gates (PR 4–6) prove RNG streams draw-for-draw
//! unperturbed, and 13 golden gates enforce the paper's numbers. This
//! crate makes the classic regressions *statically* impossible instead
//! of hoping a test notices. It is a hand-rolled lexer ([`lexer`]) plus
//! a rule pass ([`rules`]) plus waiver bookkeeping ([`waivers`]) — no
//! dependencies, no registry, no nightly, same vendored ethos as the
//! workspace's hand-rolled JSON layer.
//!
//! # Rule catalog
//!
//! | id  | rule | rationale | exempt |
//! |-----|------|-----------|--------|
//! | D01 | no `HashMap`/`HashSet` **iteration** | hash iteration order is nondeterministic; one `for (k, _) in &map` feeding a draw loop desynchronizes every downstream RNG stream. Membership checks stay legal. | tests, examples, `crates/bench` |
//! | D02 | no ambient entropy / wall-clock (`thread_rng`, `rand::random`, `OsRng`, `from_entropy`, `SystemTime::now`, `Instant::now`) | every random bit must flow from the master seed (`rng_from_seed` / `derive_seed2`) or replay breaks; time reads make output machine-dependent | `crates/bench`, binary targets (the CLI) |
//! | D03 | no `==`/`!=` on float-typed operands | float equality is almost always a rounding-sensitive bug; *intentional* exact comparison (sentinels, golden bit-compares) must go through `ldp_common::float::{exact_eq, exactly_zero}`, which documents the intent | tests, examples, `crates/bench`, the `float` module itself |
//! | D04 | no `unwrap()` / bare `expect("")` in library code | a library panic kills a whole shard worker mid-stream; the workspace contract is typed errors (`LdpError`) or degradation (`ArmOutcome::Degenerate`). A justified `expect("<why this cannot fail>")` is allowed. | tests, examples, `crates/bench`, binary targets |
//! | D05 | seed literals (`rng_from_seed(<int>)`) only in tests/benches/examples | production paths must derive per-purpose streams via `derive_seed2(master, …)`; a literal silently reuses one stream everywhere | tests, examples, `crates/bench` |
//! | D08 | no single RNG drawn from in **two argument positions of one call** | Rust evaluates arguments left-to-right, so `f(rng.draw(), rng.draw())` works — until a refactor reorders, splits, or lifts the arguments and silently reshuffles the consumed stream (and every downstream draw). Bind the draws to sequential `let`s, or derive independent streams via `derive_seed2`. | tests, examples, `crates/bench`, binary targets |
//! | H01 | every crate root carries `#![forbid(unsafe_code)]` | the workspace is pure safe Rust; `forbid` makes that a compile error, this rule makes *removing the forbid* a lint error | — |
//! | H02 | no `println!`/`eprintln!` in library code | library output must be returned (`String`/`Table`/JSON) so the CLI and bench binaries own the terminal; stray prints corrupt `--json` emissions | the CLI and other bins, `crates/bench`, tests, examples |
//!
//! # Waivers
//!
//! `lint_waivers.toml` at the workspace root grants per-file-per-rule
//! suppressions; each needs a `justification` and an `expires_pr` (see
//! [`waivers`]). `--check-waivers` fails on stale or unused entries, so
//! waived debt cannot silently outlive its excuse.
//!
//! # Golden drift
//!
//! `--check-goldens` verifies every blessed artifact (`tests/golden/*.json`
//! and `crates/bench/trajectory/*.json`) against the checked-in
//! `golden.manifest` of FNV-1a 64 content hashes (see [`goldens`]), so a
//! golden cannot change — or appear, or vanish — without an explicit
//! `--bless-goldens` whose manifest diff lands in review.
//!
//! # Known limits (by design)
//!
//! The lexer has no type information. D01 tracks only file-local
//! bindings (`let x = HashMap::new()`, `x: HashMap<…>` ascriptions);
//! D03 only fires when one operand is a float literal or an
//! `as f64`/`as f32` cast. False negatives are possible; false positives
//! are rare and waivable. The point is to catch the classic regression
//! shapes cheaply and offline, not to re-implement rustc.

pub mod goldens;
pub mod lexer;
pub mod rules;
pub mod waivers;

pub use goldens::{bless_goldens, check_goldens, GOLDEN_DIRS, GOLDEN_MANIFEST};
pub use rules::{lint_file, FileClass, Finding, RuleId};
pub use waivers::{
    apply_waivers, check_waivers, current_pr_from_changes, parse_waivers, render_waivers, Waiver,
};

use std::path::{Path, PathBuf};

/// A fatal lint-pass error (I/O or waiver-file syntax) — distinct from
/// findings, which are diagnostics about the code under analysis.
#[derive(Debug)]
pub enum LintError {
    /// Reading the tree or a file failed.
    Io(String),
    /// `lint_waivers.toml` is malformed.
    Waivers(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Waivers(m) => write!(f, "waiver file error: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// The roots the pass walks, relative to the workspace root. `vendor/`
/// is deliberately absent: vendored stand-ins are external code.
pub const WALK_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names skipped wherever they appear: build output, VCS, and
/// the lint crate's own known-bad fixture snippets.
pub const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "vendor"];

/// Everything one workspace scan produced.
#[derive(Debug)]
pub struct LintReport {
    /// Findings no waiver covered, in (path, line, col) order.
    pub findings: Vec<Finding>,
    /// Findings a waiver suppressed, with the waiver's index.
    pub suppressed: Vec<(Finding, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collects every `.rs` file under the walk roots, sorted by path so
/// output (and therefore CI logs) is deterministic.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    for wr in WALK_ROOTS {
        let dir = root.join(wr);
        if dir.is_dir() {
            walk_dir(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk_dir(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full catalog over the workspace at `root`, applying
/// `waivers`. Findings come back sorted by path/line/col.
pub fn lint_workspace(root: &Path, waivers: &[Waiver]) -> Result<LintReport, LintError> {
    let files = collect_files(root)?;
    let files_scanned = files.len();
    let mut all: Vec<Finding> = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| LintError::Io(format!("{}: {e}", file.display())))?;
        let rel = relative_path(root, file);
        all.extend(rules::lint_file(&rel, &src));
    }
    let (findings, suppressed) = waivers::apply_waivers(all, waivers);
    Ok(LintReport {
        findings,
        suppressed,
        files_scanned,
    })
}

/// Loads `lint_waivers.toml` from the workspace root; a missing file
/// means "no waivers", a malformed one is a hard error.
pub fn load_waivers(path: &Path) -> Result<Vec<Waiver>, LintError> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let content = std::fs::read_to_string(path)
        .map_err(|e| LintError::Io(format!("{}: {e}", path.display())))?;
    waivers::parse_waivers(&content)
        .map_err(|(line, msg)| LintError::Waivers(format!("{}:{line}: {msg}", path.display())))
}

/// Reads the in-flight PR number from `<root>/CHANGES.md` (see
/// [`waivers::current_pr_from_changes`]); `None` when undeterminable.
pub fn discover_current_pr(root: &Path) -> Option<u32> {
    let content = std::fs::read_to_string(root.join("CHANGES.md")).ok()?;
    waivers::current_pr_from_changes(&content)
}

/// Workspace-relative forward-slash path (falls back to the full path
/// when `file` is not under `root`).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}
