#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `ldp-lint` — workspace determinism & hygiene lints the compiler and
//! clippy cannot express.
//!
//! The reproduction's whole value rests on bit-exact determinism: the
//! differential gates (PR 4–6) prove RNG streams draw-for-draw
//! unperturbed, and 14 golden gates enforce the paper's numbers. This
//! crate makes the classic regressions *statically* impossible instead
//! of hoping a test notices. It is a hand-rolled lexer ([`lexer`]) plus
//! two analysis stages — token-local rules ([`rules`]) and a cross-file
//! stage ([`tree`] → [`symbols`] → [`callgraph`] → [`passes`]) — plus
//! waiver bookkeeping ([`waivers`]) and machine-readable output
//! ([`sarif`]). No dependencies, no registry, no nightly; same vendored
//! ethos as the workspace's hand-rolled JSON layer.
//!
//! # Rule catalog
//!
//! | id  | rule | rationale | exempt |
//! |-----|------|-----------|--------|
//! | D01 | no `HashMap`/`HashSet` **iteration** | hash iteration order is nondeterministic; one `for (k, _) in &map` feeding a draw loop desynchronizes every downstream RNG stream. Membership checks stay legal. | tests, examples, `crates/bench` |
//! | D02 | no ambient entropy / wall-clock (`thread_rng`, `rand::random`, `OsRng`, `from_entropy`, `SystemTime::now`, `Instant::now`) | every random bit must flow from the master seed (`rng_from_seed` / `derive_seed2`) or replay breaks; time reads make output machine-dependent | `crates/bench`, binary targets (the CLI) |
//! | D03 | no `==`/`!=` on float-typed operands | float equality is almost always a rounding-sensitive bug; *intentional* exact comparison (sentinels, golden bit-compares) must go through `ldp_common::float::{exact_eq, exactly_zero}`, which documents the intent | tests, examples, `crates/bench`, the `float` module itself |
//! | D04 | no `unwrap()` / bare `expect("")` in library code | a library panic kills a whole shard worker mid-stream; the workspace contract is typed errors (`LdpError`) or degradation (`ArmOutcome::Degenerate`). A justified `expect("<why this cannot fail>")` is allowed. | tests, examples, `crates/bench`, binary targets |
//! | D05 | seed literals (`rng_from_seed(<int>)`) only in tests/benches/examples | production paths must derive per-purpose streams via `derive_seed2(master, …)`; a literal silently reuses one stream everywhere | tests, examples, `crates/bench` |
//! | D08 | no single RNG drawn from in **two argument positions of one call** | Rust evaluates arguments left-to-right, so `f(rng.draw(), rng.draw())` works — until a refactor reorders, splits, or lifts the arguments and silently reshuffles the consumed stream (and every downstream draw). Bind the draws to sequential `let`s, or derive independent streams via `derive_seed2`. | tests, examples, `crates/bench`, binary targets |
//! | D09 | artifact writes go through `ldp_common::write_atomic` | a bare `fs::write`/`File::create`/`fs::copy` leaves a torn half-file on crash, which checkpoint-resume and the golden gates would read as corrupt or silently truncated. Applies to binaries and `crates/bench` too — that is where artifacts get written. | tests, examples, test regions, the `write_atomic` impl (`crates/common/src/json.rs`), the lint manifest writer (`crates/lint/src/goldens.rs`) |
//! | D10 | no `thread::spawn` / `.spawn(` outside the audited surface | all parallelism must flow through `map_trials*` (deterministic join order) and the stream coordinator; stray spawns are unaudited interleaving. Fires even in tests and binaries — the audit is about topology. | `crates/sim/src/runner.rs`, `crates/sim/src/stream/coordinator.rs` |
//! | H01 | every crate root carries `#![forbid(unsafe_code)]` | the workspace is pure safe Rust; `forbid` makes that a compile error, this rule makes *removing the forbid* a lint error | — |
//! | H02 | no `println!`/`eprintln!` in library code | library output must be returned (`String`/`Table`/JSON) so the CLI and bench binaries own the terminal; stray prints corrupt `--json` emissions | the CLI and other bins, `crates/bench`, tests, examples |
//! | P01 | **transitive purity** of the pure-root call closures | every function reachable from `shard_epoch_delta`, `run_experiment`, the checkpoint codecs, … (see `[[pure_root]]`) must be free of ambient entropy, wall-clock, environment reads, and interior-mutable statics — *including everything they call*, resolved through the conservative call graph; unresolved calls are pessimistically impure, waivable per edge via `[[edge_waiver]]` | test regions; bins/benches/tests never enter the graph |
//! | P02 | **RNG stream discipline** | (a) one RNG feeding two calls in a single statement depends on evaluation order (inter-call complement of D08); (b) `rng.clone()` forks a stream into replayed draws (the η-sweep replay in `runner.rs` is the blessed exception); (c) an RNG captured by a closure handed to `map_trials`/`map_trials_with`/`thread::spawn` draws in scheduler order | tests, examples, `crates/bench`, binary targets |
//!
//! Run `ldp-lint --explain <RULE>` for the full rationale plus the
//! bad/good fixture pair of any rule.
//!
//! # Cross-file analysis
//!
//! The second stage builds, per run: a delimiter-matched token tree
//! ([`tree`]), a workspace symbol table — module paths from file layout
//! plus inline `mod`s, every `fn` with parameters and body extent, `use`
//! aliases, interior-mutable statics ([`symbols`]) — and a conservative
//! call graph with three-way resolution: workspace (possibly a union of
//! same-named candidates), external, or *opaque* ([`callgraph`]). The
//! P01/P02 passes ([`passes`]) run on top. Known limits, all
//! false-negative directions: turbofish and `<T as Trait>::m` callees
//! are skipped, field-closure calls are invisible, and macro bodies are
//! not expanded.
//!
//! # Waivers
//!
//! `lint_waivers.toml` at the workspace root grants per-file-per-rule
//! suppressions; each needs a `justification` and an `expires_pr` (see
//! [`waivers`]). The same file declares the P01 configuration:
//! `[[pure_root]]` entries (empty = the built-in
//! [`passes::DEFAULT_PURE_ROOTS`]) and `[[edge_waiver]]` per-edge
//! suppressions with the same freshness contract. `--check-waivers`
//! fails on stale or unused entries of either kind, so waived debt
//! cannot silently outlive its excuse.
//!
//! # Golden drift
//!
//! `--check-goldens` verifies every blessed artifact (`tests/golden/*.json`
//! and `crates/bench/trajectory/*.json`) against the checked-in
//! `golden.manifest` of FNV-1a 64 content hashes (see [`goldens`]), so a
//! golden cannot change — or appear, or vanish — without an explicit
//! `--bless-goldens` whose manifest diff lands in review.
//!
//! # Output formats
//!
//! The default text format is `path:line:col: [ID] message` plus the
//! offending line. `--format sarif` emits a SARIF 2.1.0 document
//! ([`sarif`]) carrying the identical finding multiset, for
//! `github/codeql-action/upload-sarif`-style PR annotation.
//!
//! # Known limits (by design)
//!
//! The lexer has no type information. D01 tracks only file-local
//! bindings; D03 only fires when one operand is a float literal or an
//! `as f64`/`as f32` cast; the RNG heuristic is the binding name. False
//! negatives are possible; false positives are rare and waivable. The
//! point is to catch the classic regression shapes cheaply and offline,
//! not to re-implement rustc.

pub mod callgraph;
pub mod goldens;
pub mod lexer;
pub mod passes;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod tree;
pub mod waivers;

pub use goldens::{bless_goldens, check_goldens, GOLDEN_DIRS, GOLDEN_MANIFEST};
pub use rules::{lint_file, FileClass, Finding, RuleId};
pub use sarif::render_sarif;
pub use waivers::{
    apply_waivers, check_edge_waivers, check_waivers, current_pr_from_changes, parse_config,
    parse_waivers, render_waivers, EdgeWaiver, LintConfig, Waiver,
};

use std::path::{Path, PathBuf};

/// A fatal lint-pass error (I/O, waiver-file syntax, or pass
/// configuration) — distinct from findings, which are diagnostics about
/// the code under analysis.
#[derive(Debug)]
pub enum LintError {
    /// Reading the tree or a file failed.
    Io(String),
    /// `lint_waivers.toml` is malformed, or a pass's configuration
    /// (e.g. a pure root) does not match the workspace.
    Waivers(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Waivers(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// The roots the pass walks, relative to the workspace root. `vendor/`
/// is deliberately absent: vendored stand-ins are external code.
pub const WALK_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names skipped wherever they appear: build output, VCS, and
/// the lint crate's own known-bad fixture snippets.
pub const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "vendor"];

/// Everything one workspace scan produced.
#[derive(Debug)]
pub struct LintReport {
    /// Findings no waiver covered, in (path, line, col) order.
    pub findings: Vec<Finding>,
    /// Findings a waiver suppressed, with the waiver's index.
    pub suppressed: Vec<(Finding, usize)>,
    /// Per-`[[edge_waiver]]` "suppressed something this run" flags,
    /// index-aligned with [`LintConfig::edge_waivers`].
    pub edge_waivers_used: Vec<bool>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Collects every `.rs` file under the walk roots, sorted by path so
/// output (and therefore CI logs) is deterministic.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    for wr in WALK_ROOTS {
        let dir = root.join(wr);
        if dir.is_dir() {
            walk_dir(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk_dir(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs both analysis stages over in-memory `(rel_path, source)` pairs:
/// the token-local rules per file, then the cross-file P01/P02 passes
/// over the symbol table + call graph. `pure_roots` is the *effective*
/// root list (empty = P01 traverses nothing; [`lint_workspace`] applies
/// the [`passes::DEFAULT_PURE_ROOTS`] fallback before calling this).
/// `crate_idents` maps `crates/<dir>` directory names to lib idents
/// (see [`crate_ident_map`]); `root_ident` names the workspace-root
/// package. Returns unwaived findings (sorted by path/line/col) plus
/// the per-edge-waiver used flags. Errors when a pure root matches
/// nothing.
pub fn analyze_files(
    files: &[(String, String)],
    pure_roots: &[String],
    edge_waivers: &[EdgeWaiver],
    crate_idents: &[(String, String)],
    root_ident: &str,
) -> Result<(Vec<Finding>, Vec<bool>), String> {
    let mut sources = Vec::with_capacity(files.len());
    let mut all: Vec<Finding> = Vec::new();
    for (rel, src) in files {
        let sf = symbols::SourceFile::new(rel, src);
        all.extend(rules::lint_tokens(rel, &sf.class, &sf.toks, src));
        sources.push(sf);
    }
    let ws = symbols::Workspace::build(sources, crate_idents, root_ident);
    let cg = callgraph::CallGraph::build(&ws);
    let (pass_findings, edge_used) = passes::run_passes(&ws, &cg, pure_roots, edge_waivers)?;
    for pf in pass_findings {
        let file = &ws.files[pf.file];
        let tok = &file.toks[pf.tok];
        let (_, src) = &files[pf.file];
        let source_line = src
            .lines()
            .nth(tok.line as usize - 1)
            .unwrap_or_default()
            .to_string();
        all.push(Finding {
            path: file.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            rule: pf.rule,
            message: pf.message,
            source_line,
        });
    }
    all.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok((all, edge_used))
}

/// Runs the full catalog (both stages) over the workspace at `root`,
/// applying the waivers in `config`. Findings come back sorted by
/// path/line/col.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<LintReport, LintError> {
    let paths = collect_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for file in &paths {
        let src = std::fs::read_to_string(file)
            .map_err(|e| LintError::Io(format!("{}: {e}", file.display())))?;
        files.push((relative_path(root, file), src));
    }
    let crate_idents = crate_ident_map(root);
    let root_ident = root_package_ident(root);
    let default_roots: Vec<String> = passes::DEFAULT_PURE_ROOTS
        .iter()
        .map(|r| (*r).to_string())
        .collect();
    let pure_roots = if config.pure_roots.is_empty() {
        &default_roots
    } else {
        &config.pure_roots
    };
    let (all, edge_waivers_used) = analyze_files(
        &files,
        pure_roots,
        &config.edge_waivers,
        &crate_idents,
        &root_ident,
    )
    .map_err(LintError::Waivers)?;
    let (findings, suppressed) = waivers::apply_waivers(all, &config.waivers);
    Ok(LintReport {
        findings,
        suppressed,
        edge_waivers_used,
        files_scanned: files.len(),
    })
}

/// Maps each `crates/<dir>` to its library crate ident by reading the
/// crate's `Cargo.toml` (`[lib] name` when present, else the `[package]`
/// name with `-` → `_`). Directories whose manifest cannot be read fall
/// back to the directory-name convention inside [`symbols`].
pub fn crate_ident_map(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return out;
    };
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let Some(ident) = manifest_lib_ident(&manifest) else {
            continue;
        };
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push((dir_name, ident));
    }
    out
}

/// The workspace-root package ident (for files under the root `src/`).
pub fn root_package_ident(root: &Path) -> String {
    std::fs::read_to_string(root.join("Cargo.toml"))
        .ok()
        .and_then(|m| manifest_lib_ident(&m))
        .unwrap_or_else(|| "workspace_root".to_string())
}

/// Extracts the library ident from a `Cargo.toml`: the `[lib] name`
/// when declared, else the `[package] name`, `-` normalized to `_`.
fn manifest_lib_ident(manifest: &str) -> Option<String> {
    let mut section = String::new();
    let mut package_name: Option<String> = None;
    let mut lib_name: Option<String> = None;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        if key.trim() != "name" {
            continue;
        }
        let value = value.trim().trim_matches('"').to_string();
        match section.as_str() {
            "package" => package_name = Some(value),
            "lib" => lib_name = Some(value),
            _ => {}
        }
    }
    lib_name.or(package_name).map(|n| n.replace('-', "_"))
}

/// Loads the full `lint_waivers.toml` config from the workspace root; a
/// missing file means "all defaults", a malformed one is a hard error.
pub fn load_config(path: &Path) -> Result<LintConfig, LintError> {
    if !path.exists() {
        return Ok(LintConfig::default());
    }
    let content = std::fs::read_to_string(path)
        .map_err(|e| LintError::Io(format!("{}: {e}", path.display())))?;
    waivers::parse_config(&content)
        .map_err(|(line, msg)| LintError::Waivers(format!("{}:{line}: {msg}", path.display())))
}

/// Loads just the `[[waiver]]` entries (pre-P01 entry point, kept for
/// compatibility with existing tooling).
pub fn load_waivers(path: &Path) -> Result<Vec<Waiver>, LintError> {
    load_config(path).map(|c| c.waivers)
}

/// Reads the in-flight PR number from `<root>/CHANGES.md` (see
/// [`waivers::current_pr_from_changes`]); `None` when undeterminable.
pub fn discover_current_pr(root: &Path) -> Option<u32> {
    let content = std::fs::read_to_string(root.join("CHANGES.md")).ok()?;
    waivers::current_pr_from_changes(&content)
}

/// Workspace-relative forward-slash path (falls back to the full path
/// when `file` is not under `root`).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}
