//! Fixture-based golden tests for the rule catalog.
//!
//! Every rule has a known-bad snippet under `fixtures/bad/` whose
//! expected diagnostics are written inline as `//~ <ID>` markers on the
//! offending lines (compiletest style), and a known-good twin under
//! `fixtures/good/` that must lint clean. The workspace walker skips
//! `fixtures/` directories, so the known-bad snippets never pollute the
//! live scan.

use std::path::{Path, PathBuf};

use ldp_lint::lint_file;

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

/// The workspace-relative label a fixture is linted under. H01 fixtures
/// must look like a crate root; everything else is a plain library file.
fn label_for(stem: &str) -> String {
    if stem.starts_with("h01") {
        "crates/fixturecrate/src/lib.rs".to_string()
    } else {
        format!("crates/fixturecrate/src/{stem}.rs")
    }
}

fn fixture_sources(kind: &str) -> Vec<(String, String)> {
    let dir = fixture_dir(kind);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixture dir exists") {
        let path = entry.expect("fixture dir readable").path();
        let stem = path
            .file_stem()
            .expect("fixture has a name")
            .to_string_lossy()
            .to_string();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).expect("fixture readable");
            out.push((stem, src));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no fixtures under {}", dir.display());
    out
}

/// Parses `//~ <ID> [<ID>…]` markers: (1-based line, rule id) pairs.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        // Only rule-id tokens count, so prose *about* the `//~` syntax
        // in fixture headers stays inert.
        for id in line[pos + 3..].split_whitespace() {
            if ldp_lint::RuleId::parse(id).is_some() {
                out.push((idx as u32 + 1, id.to_string()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn bad_fixtures_fire_exactly_their_marked_diagnostics() {
    let mut rules_covered = std::collections::BTreeSet::new();
    for (stem, src) in fixture_sources("bad") {
        let expected = expected_markers(&src);
        assert!(
            !expected.is_empty(),
            "bad fixture {stem} has no //~ markers"
        );
        let mut actual: Vec<(u32, String)> = lint_file(&label_for(&stem), &src)
            .into_iter()
            .map(|f| (f.line, f.rule.id().to_string()))
            .collect();
        actual.sort();
        assert_eq!(
            actual, expected,
            "fixture {stem}: findings (left) must match //~ markers (right)"
        );
        for (_, id) in expected {
            rules_covered.insert(id);
        }
    }
    // Every rule in the catalog must have at least one bad fixture.
    let all: Vec<String> = ldp_lint::RuleId::ALL
        .iter()
        .map(|r| r.id().to_string())
        .collect();
    let covered: Vec<String> = rules_covered.into_iter().collect();
    assert_eq!(covered, all, "every rule needs a known-bad fixture");
}

#[test]
fn good_fixtures_lint_clean() {
    let mut checked = 0;
    for (stem, src) in fixture_sources("good") {
        let findings = lint_file(&label_for(&stem), &src);
        assert!(
            findings.is_empty(),
            "good fixture {stem} should be clean, got:\n{}",
            findings
                .iter()
                .map(ldp_lint::Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
        checked += 1;
    }
    // One good twin per rule, plus the lexer/scoping torture fixture.
    assert!(checked >= 8, "expected ≥8 good fixtures, found {checked}");
}

#[test]
fn finding_render_format_is_path_line_col_id_message() {
    let src = "pub fn f() { Some(1).unwrap(); }\n";
    let findings = lint_file("crates/fixturecrate/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    let rendered = findings[0].render();
    assert!(
        rendered.starts_with("crates/fixturecrate/src/x.rs:1:22: [D04] "),
        "unexpected render: {rendered}"
    );
    assert!(
        rendered.ends_with("| pub fn f() { Some(1).unwrap(); }"),
        "offending line missing: {rendered}"
    );
}
