//! Fixture-based golden tests for the rule catalog — both stages.
//!
//! Every rule has a known-bad snippet under `fixtures/bad/` whose
//! expected diagnostics are written inline as `//~ <ID>` markers on the
//! offending lines (compiletest style), and a known-good twin under
//! `fixtures/good/` that must lint clean. Two shapes exist:
//!
//! * a single `.rs` file — one analysis unit of one file;
//! * a subdirectory (e.g. `bad/p01_cross/`) — one analysis unit of
//!   several files forming a crate, for the cross-file passes: the
//!   caller lives in one file, the impurity in another.
//!
//! A `//@ pure-roots: a b c` directive (any file of the unit) declares
//! the P01 roots for that unit; without one, P01 traverses nothing.
//! The workspace walker skips `fixtures/` directories, so the known-bad
//! snippets never pollute the live scan.

use std::path::{Path, PathBuf};

use ldp_lint::analyze_files;

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

/// The workspace-relative label a fixture file is linted under. H01
/// fixtures and files literally named `lib.rs` must look like a crate
/// root; everything else is a plain library file.
fn label_for(stem: &str) -> String {
    if stem.starts_with("h01") || stem == "lib" {
        "crates/fixturecrate/src/lib.rs".to_string()
    } else {
        format!("crates/fixturecrate/src/{stem}.rs")
    }
}

/// One analysis unit: its name plus labeled sources.
struct Unit {
    name: String,
    files: Vec<(String, String)>,
}

/// Loads every unit under `fixtures/<kind>/`: plain `.rs` files become
/// single-file units, subdirectories multi-file units.
fn fixture_units(kind: &str) -> Vec<Unit> {
    let dir = fixture_dir(kind);
    let mut out = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixture dir exists")
        .map(|e| e.expect("fixture dir readable").path())
        .collect();
    entries.sort();
    for path in entries {
        let stem = path
            .file_stem()
            .expect("fixture has a name")
            .to_string_lossy()
            .to_string();
        if path.is_dir() {
            let mut files = Vec::new();
            let mut members: Vec<PathBuf> = std::fs::read_dir(&path)
                .expect("fixture subdir readable")
                .map(|e| e.expect("fixture subdir readable").path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            members.sort();
            for member in members {
                let member_stem = member
                    .file_stem()
                    .expect("member has a name")
                    .to_string_lossy()
                    .to_string();
                let src = std::fs::read_to_string(&member).expect("fixture readable");
                files.push((label_for(&member_stem), src));
            }
            assert!(!files.is_empty(), "empty fixture dir {}", path.display());
            out.push(Unit { name: stem, files });
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).expect("fixture readable");
            out.push(Unit {
                name: stem.clone(),
                files: vec![(label_for(&stem), src)],
            });
        }
    }
    assert!(!out.is_empty(), "no fixtures under {}", dir.display());
    out
}

/// Extracts `//@ pure-roots: a b c` directives from every file of a unit.
fn pure_roots(unit: &Unit) -> Vec<String> {
    let mut roots = Vec::new();
    for (_, src) in &unit.files {
        for line in src.lines() {
            if let Some(rest) = line.trim().strip_prefix("//@ pure-roots:") {
                roots.extend(rest.split_whitespace().map(str::to_string));
            }
        }
    }
    roots
}

/// Runs both analysis stages on one unit.
fn analyze_unit(unit: &Unit) -> Vec<ldp_lint::Finding> {
    let roots = pure_roots(unit);
    let (findings, _) = analyze_files(&unit.files, &roots, &[], &[], "fixroot")
        .expect("fixture pure roots must resolve");
    findings
}

/// Parses `//~ <ID> [<ID>…]` markers: (file label, 1-based line, rule id).
fn expected_markers(unit: &Unit) -> Vec<(String, u32, String)> {
    let mut out = Vec::new();
    for (label, src) in &unit.files {
        for (idx, line) in src.lines().enumerate() {
            let Some(pos) = line.find("//~") else {
                continue;
            };
            // Only rule-id tokens count, so prose *about* the `//~`
            // syntax in fixture headers stays inert.
            for id in line[pos + 3..].split_whitespace() {
                if ldp_lint::RuleId::parse(id).is_some() {
                    out.push((label.clone(), idx as u32 + 1, id.to_string()));
                }
            }
        }
    }
    out.sort();
    out
}

#[test]
fn bad_fixtures_fire_exactly_their_marked_diagnostics() {
    let mut rules_covered = std::collections::BTreeSet::new();
    for unit in fixture_units("bad") {
        let expected = expected_markers(&unit);
        assert!(
            !expected.is_empty(),
            "bad fixture {} has no //~ markers",
            unit.name
        );
        let mut actual: Vec<(String, u32, String)> = analyze_unit(&unit)
            .into_iter()
            .map(|f| (f.path, f.line, f.rule.id().to_string()))
            .collect();
        actual.sort();
        assert_eq!(
            actual, expected,
            "fixture {}: findings (left) must match //~ markers (right)",
            unit.name
        );
        for (_, _, id) in expected {
            rules_covered.insert(id);
        }
    }
    // Every rule in the catalog must have at least one bad fixture.
    let all: Vec<String> = ldp_lint::RuleId::ALL
        .iter()
        .map(|r| r.id().to_string())
        .collect();
    let covered: Vec<String> = rules_covered.into_iter().collect();
    assert_eq!(covered, all, "every rule needs a known-bad fixture");
}

#[test]
fn good_fixtures_lint_clean() {
    let mut checked = 0;
    for unit in fixture_units("good") {
        let findings = analyze_unit(&unit);
        assert!(
            findings.is_empty(),
            "good fixture {} should be clean, got:\n{}",
            unit.name,
            findings
                .iter()
                .map(ldp_lint::Finding::render)
                .collect::<Vec<_>>()
                .join("\n")
        );
        checked += 1;
    }
    // One good twin per rule, plus the lexer/scoping torture fixture
    // and the cross-file purity tree.
    assert!(checked >= 12, "expected ≥12 good fixtures, found {checked}");
}

#[test]
fn opaque_pessimism_is_exercised_by_the_cross_file_tree() {
    let unit = fixture_units("bad")
        .into_iter()
        .find(|u| u.name == "p01_cross")
        .expect("bad/p01_cross exists");
    let findings = analyze_unit(&unit);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("did not resolve")),
        "the unresolved-callee case must surface the opaque-pessimism message"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.path.ends_with("util.rs") && f.message.contains("env::var")),
        "the cross-file impurity must land in the callee's file"
    );
}

#[test]
fn finding_render_format_is_path_line_col_id_message() {
    let src = "pub fn f() { Some(1).unwrap(); }\n";
    let findings = ldp_lint::lint_file("crates/fixturecrate/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    let rendered = findings[0].render();
    assert!(
        rendered.starts_with("crates/fixturecrate/src/x.rs:1:22: [D04] "),
        "unexpected render: {rendered}"
    );
    assert!(
        rendered.ends_with("| pub fn f() { Some(1).unwrap(); }"),
        "offending line missing: {rendered}"
    );
}
