//! Self-lint: plain `cargo test` runs the full rule catalog — both the
//! token-local rules and the cross-file P01/P02 passes — over the live
//! workspace, so a determinism/hygiene regression fails the tier-1 gate
//! locally. CI's `ldp-lint --deny --check-waivers` step is the same
//! check with a nicer log, and the SARIF round-trip test locks the
//! machine-readable emission to the text renderer's finding multiset.

use std::path::{Path, PathBuf};

use ldp_lint::{
    check_edge_waivers, check_waivers, discover_current_pr, lint_workspace, load_config,
    render_sarif, LintReport,
};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("crates/lint/../.. is the workspace root")
}

fn live_report(root: &Path) -> (ldp_lint::LintConfig, LintReport) {
    let config = load_config(&root.join("lint_waivers.toml")).expect("waiver file parses");
    let report = lint_workspace(root, &config).expect("workspace scan succeeds");
    (config, report)
}

#[test]
fn workspace_lints_clean_with_fresh_waivers() {
    let root = workspace_root();
    let (config, report) = live_report(&root);
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "unwaived lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ldp_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let current_pr = discover_current_pr(&root);
    assert!(
        current_pr.is_some(),
        "CHANGES.md must yield a current PR number for waiver expiry"
    );
    let mut errors = check_waivers(&config.waivers, &report.suppressed, current_pr);
    errors.extend(check_edge_waivers(
        &config.edge_waivers,
        &report.edge_waivers_used,
        current_pr,
    ));
    assert!(
        errors.is_empty(),
        "waiver check failed:\n{}",
        errors.join("\n")
    );
}

#[test]
fn sarif_round_trips_the_text_finding_multiset() {
    // The SARIF document must parse as JSON (with the workspace's own
    // parser) and carry exactly the same (rule, path, line, col,
    // message) multiset as the text renderer — nothing added, nothing
    // dropped. Findings are injected artificially (the live tree lints
    // clean), plus the live report's multiset for good measure.
    let root = workspace_root();
    let (_, report) = live_report(&root);
    let mut findings = report.findings;
    let fixture = "pub fn f() { Some(1).unwrap(); }\npub fn g() { println!(\"x\"); }\n";
    findings.extend(ldp_lint::lint_file("crates/fixturecrate/src/x.rs", fixture));
    assert!(
        !findings.is_empty(),
        "fixture injection must produce findings to round-trip"
    );
    let doc = ldp_common::json::Json::parse(&render_sarif(&findings))
        .expect("SARIF emission parses as JSON");
    let runs = doc.get("runs").and_then(|r| r.as_array()).expect("runs[]");
    assert_eq!(runs.len(), 1);
    let results = runs[0]
        .get("results")
        .and_then(|r| r.as_array())
        .expect("results[]");
    let mut from_sarif: Vec<(String, String, u32, u32, String)> = results
        .iter()
        .map(|r| {
            let loc = &r
                .get("locations")
                .and_then(|l| l.as_array())
                .expect("locations")[0];
            let phys = loc.get("physicalLocation").expect("physicalLocation");
            let region = phys.get("region").expect("region");
            (
                r.get("ruleId")
                    .and_then(|v| v.as_str())
                    .expect("ruleId")
                    .to_string(),
                phys.get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(|v| v.as_str())
                    .expect("uri")
                    .to_string(),
                region
                    .get("startLine")
                    .and_then(ldp_common::json::Json::as_f64)
                    .expect("startLine") as u32,
                region
                    .get("startColumn")
                    .and_then(ldp_common::json::Json::as_f64)
                    .expect("startColumn") as u32,
                r.get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(|v| v.as_str())
                    .expect("message.text")
                    .to_string(),
            )
        })
        .collect();
    let mut from_text: Vec<(String, String, u32, u32, String)> = findings
        .iter()
        .map(|f| {
            (
                f.rule.id().to_string(),
                f.path.clone(),
                f.line,
                f.col,
                f.message.clone(),
            )
        })
        .collect();
    from_sarif.sort();
    from_text.sort();
    assert_eq!(from_sarif, from_text, "SARIF and text diverge");
    // The rule catalog rides along in full.
    let rules = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(|r| r.as_array())
        .expect("driver.rules[]");
    assert_eq!(rules.len(), ldp_lint::RuleId::ALL.len());
}

#[test]
fn blessed_goldens_match_the_manifest() {
    // The live tree's golden.manifest must agree with every blessed
    // artifact — CI's `ldp-lint --check-goldens` is the same check. A
    // failure here means a golden or trajectory file changed without an
    // explicit `ldp-lint --bless-goldens`.
    let root = workspace_root();
    let errors = ldp_lint::check_goldens(&root).expect("golden scan succeeds");
    assert!(errors.is_empty(), "golden drift:\n{}", errors.join("\n"));
}

#[test]
fn walker_covers_every_crate_and_skips_fixtures_and_vendor() {
    let root = workspace_root();
    let files = ldp_lint::collect_files(&root).expect("walk succeeds");
    let rels: Vec<String> = files
        .iter()
        .map(|f| {
            f.strip_prefix(&root)
                .expect("walked file is under root")
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    for crate_root in [
        "src/lib.rs",
        "crates/common/src/lib.rs",
        "crates/protocols/src/lib.rs",
        "crates/attacks/src/lib.rs",
        "crates/datasets/src/lib.rs",
        "crates/core/src/lib.rs",
        "crates/kv/src/lib.rs",
        "crates/sim/src/lib.rs",
        "crates/bench/src/lib.rs",
        "crates/lint/src/lib.rs",
    ] {
        assert!(
            rels.contains(&crate_root.to_string()),
            "missing {crate_root}"
        );
    }
    assert!(
        !rels
            .iter()
            .any(|r| r.contains("fixtures/") || r.starts_with("vendor/")),
        "walker must skip fixtures/ and vendor/"
    );
}

#[test]
fn crate_ident_map_reads_the_live_manifests() {
    // The cross-file resolver depends on `crates/<dir>` → lib ident
    // mapping being right for the irregular cases (crates/core builds
    // `ldprecover`, the root package is `ldprecover-repro`).
    let root = workspace_root();
    let map = ldp_lint::crate_ident_map(&root);
    let lookup = |dir: &str| {
        map.iter()
            .find(|(d, _)| d == dir)
            .map(|(_, i)| i.as_str())
            .unwrap_or("<missing>")
            .to_string()
    };
    assert_eq!(lookup("common"), "ldp_common");
    assert_eq!(lookup("sim"), "ldp_sim");
    assert_eq!(lookup("core"), "ldprecover");
    assert!(
        ldp_lint::root_package_ident(&root).starts_with("ldprecover"),
        "root package ident should come from the root manifest"
    );
}
