//! Self-lint: plain `cargo test` runs the full rule catalog over the
//! live workspace, so a determinism/hygiene regression fails the tier-1
//! gate locally — CI's `ldp-lint --deny --check-waivers` step is the
//! same check with a nicer log.

use std::path::{Path, PathBuf};

use ldp_lint::{check_waivers, discover_current_pr, lint_workspace, load_waivers};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("crates/lint/../.. is the workspace root")
}

#[test]
fn workspace_lints_clean_with_fresh_waivers() {
    let root = workspace_root();
    let waivers = load_waivers(&root.join("lint_waivers.toml")).expect("waiver file parses");
    let report = lint_workspace(&root, &waivers).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "unwaived lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ldp_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let current_pr = discover_current_pr(&root);
    assert!(
        current_pr.is_some(),
        "CHANGES.md must yield a current PR number for waiver expiry"
    );
    let errors = check_waivers(&waivers, &report.suppressed, current_pr);
    assert!(
        errors.is_empty(),
        "waiver check failed:\n{}",
        errors.join("\n")
    );
}

#[test]
fn blessed_goldens_match_the_manifest() {
    // The live tree's golden.manifest must agree with every blessed
    // artifact — CI's `ldp-lint --check-goldens` is the same check. A
    // failure here means a golden or trajectory file changed without an
    // explicit `ldp-lint --bless-goldens`.
    let root = workspace_root();
    let errors = ldp_lint::check_goldens(&root).expect("golden scan succeeds");
    assert!(errors.is_empty(), "golden drift:\n{}", errors.join("\n"));
}

#[test]
fn walker_covers_every_crate_and_skips_fixtures_and_vendor() {
    let root = workspace_root();
    let files = ldp_lint::collect_files(&root).expect("walk succeeds");
    let rels: Vec<String> = files
        .iter()
        .map(|f| {
            f.strip_prefix(&root)
                .expect("walked file is under root")
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    for crate_root in [
        "src/lib.rs",
        "crates/common/src/lib.rs",
        "crates/protocols/src/lib.rs",
        "crates/attacks/src/lib.rs",
        "crates/datasets/src/lib.rs",
        "crates/core/src/lib.rs",
        "crates/kv/src/lib.rs",
        "crates/sim/src/lib.rs",
        "crates/bench/src/lib.rs",
        "crates/lint/src/lib.rs",
    ] {
        assert!(
            rels.contains(&crate_root.to_string()),
            "missing {crate_root}"
        );
    }
    assert!(
        !rels
            .iter()
            .any(|r| r.contains("fixtures/") || r.starts_with("vendor/")),
        "walker must skip fixtures/ and vendor/"
    );
}
