//! Serializable attack factory.
//!
//! Experiment configurations (`ldp-sim`) name attacks declaratively; the
//! randomized per-trial state — which items are targeted, which sub-domain
//! Manip poisons, which distribution the adaptive attacker designs — is
//! instantiated fresh for every trial from the trial's RNG stream, exactly
//! as the paper's evaluation re-randomizes across its 10 trials.

use ldp_common::Domain;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::adaptive::AdaptiveAttack;
use crate::ipa::InputPoisoning;
use crate::manip::Manip;
use crate::mga::{Mga, MgaSampled};
use crate::multi::MultiAttack;
use crate::traits::PoisoningAttack;

/// Declarative description of a poisoning attack (paper §VI-A.3, §VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Cheu et al.'s untargeted attack over a random sub-domain of size `h`.
    Manip {
        /// Size of the malicious sub-domain `|H|`.
        h: usize,
    },
    /// Precise maximal gain attack with `r` random targets.
    Mga {
        /// Number of target items.
        r: usize,
    },
    /// The paper's sampling-based MGA simplification with `r` random targets.
    MgaSampled {
        /// Number of target items.
        r: usize,
    },
    /// Adaptive attack with a per-trial random designed distribution.
    Adaptive,
    /// Camouflaged adaptive attack: OUE reports padded to a genuine-looking
    /// popcount (extension; see `adaptive::CamouflagedAdaptive`).
    AdaptiveCamouflaged,
    /// MGA under input poisoning (honest perturbation of target inputs).
    MgaIpa {
        /// Number of target items.
        r: usize,
    },
    /// `attackers` independent adaptive attackers sharing the malicious
    /// population (§VII-C).
    MultiAdaptive {
        /// Number of attackers.
        attackers: usize,
    },
}

impl AttackKind {
    /// Instantiates the attack's per-trial randomized state.
    ///
    /// # Panics
    /// Panics when structural parameters are out of range for the domain
    /// (`h`/`r` of 0 or exceeding `d`, zero attackers) — configuration bugs,
    /// not runtime conditions.
    pub fn instantiate<R: Rng + ?Sized>(
        &self,
        domain: Domain,
        rng: &mut R,
    ) -> Box<dyn PoisoningAttack + Send + Sync> {
        match *self {
            AttackKind::Manip { h } => Box::new(Manip::sample(domain, h, rng)),
            AttackKind::Mga { r } => Box::new(Mga::random_targets(domain, r, rng)),
            AttackKind::MgaSampled { r } => Box::new(MgaSampled::random_targets(domain, r, rng)),
            AttackKind::Adaptive => Box::new(AdaptiveAttack::random(domain, rng)),
            AttackKind::AdaptiveCamouflaged => {
                Box::new(crate::adaptive::CamouflagedAdaptive::random(domain, rng))
            }
            AttackKind::MgaIpa { r } => Box::new(InputPoisoning::random_targets(domain, r, rng)),
            AttackKind::MultiAdaptive { attackers } => {
                assert!(attackers >= 1, "need at least one attacker");
                let boxed: Vec<Box<dyn PoisoningAttack + Send + Sync>> = (0..attackers)
                    .map(|_| {
                        Box::new(AdaptiveAttack::random(domain, rng))
                            as Box<dyn PoisoningAttack + Send + Sync>
                    })
                    .collect();
                Box::new(MultiAttack::new(boxed))
            }
        }
    }

    /// The label the paper's figures use for this attack.
    pub fn label(&self) -> String {
        match *self {
            AttackKind::Manip { .. } => "Manip".to_string(),
            AttackKind::Mga { .. } => "MGA".to_string(),
            AttackKind::MgaSampled { .. } => "MGA-S".to_string(),
            AttackKind::Adaptive => "AA".to_string(),
            AttackKind::AdaptiveCamouflaged => "AA-C".to_string(),
            AttackKind::MgaIpa { .. } => "MGA-IPA".to_string(),
            AttackKind::MultiAdaptive { .. } => "MUL-AA".to_string(),
        }
    }

    /// Whether the attack has a target set (drives FG measurement and the
    /// partial-knowledge recovery arm).
    pub fn is_targeted(&self) -> bool {
        matches!(
            self,
            AttackKind::Mga { .. } | AttackKind::MgaSampled { .. } | AttackKind::MgaIpa { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_protocols::ProtocolKind;

    #[test]
    fn every_kind_instantiates_and_crafts() {
        let domain = Domain::new(32).unwrap();
        let kinds = [
            AttackKind::Manip { h: 4 },
            AttackKind::Mga { r: 5 },
            AttackKind::MgaSampled { r: 5 },
            AttackKind::Adaptive,
            AttackKind::AdaptiveCamouflaged,
            AttackKind::MgaIpa { r: 5 },
            AttackKind::MultiAdaptive { attackers: 5 },
        ];
        let mut rng = rng_from_seed(1);
        for kind in kinds {
            let attack = kind.instantiate(domain, &mut rng);
            for proto_kind in ProtocolKind::ALL {
                let proto = proto_kind.build(0.5, domain).unwrap();
                let reports = attack.craft(&proto, 25, &mut rng);
                assert_eq!(reports.len(), 25, "{kind:?} under {proto_kind:?}");
            }
            assert_eq!(kind.is_targeted(), attack.targets().is_some());
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(AttackKind::Manip { h: 3 }.label(), "Manip");
        assert_eq!(AttackKind::Mga { r: 10 }.label(), "MGA");
        assert_eq!(AttackKind::Adaptive.label(), "AA");
        assert_eq!(AttackKind::MgaIpa { r: 10 }.label(), "MGA-IPA");
        assert_eq!(AttackKind::MultiAdaptive { attackers: 5 }.label(), "MUL-AA");
    }

    #[test]
    fn per_trial_randomization_differs() {
        let domain = Domain::new(64).unwrap();
        let mut rng = rng_from_seed(2);
        let a = AttackKind::Mga { r: 8 }.instantiate(domain, &mut rng);
        let b = AttackKind::Mga { r: 8 }.instantiate(domain, &mut rng);
        assert_ne!(a.targets().unwrap(), b.targets().unwrap());
    }
}
