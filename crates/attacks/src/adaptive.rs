//! The adaptive attack (paper §V-C): the unifying model LDPRecover learns
//! against.
//!
//! The attacker designs a distribution `P` over the encoded domain and draws
//! each malicious user's report as the clean encoding of a sample from `P`.
//! Every known attack is a special case (Manip: uniform on `H`; sampled MGA:
//! uniform on the target set), which is exactly why LDPRecover can learn the
//! *sum* of malicious aggregated frequencies without attack knowledge
//! (Eq. (20)/(21)): each crafted report supports, in expectation, one item.

use ldp_common::sampling::{random_distribution, AliasTable};
use ldp_common::{Domain, Result};
use ldp_protocols::{AnyProtocol, LdpFrequencyProtocol, Report};
use rand::{Rng, RngCore};

use crate::traits::PoisoningAttack;

/// An adaptive attack with an explicit attacker-designed distribution.
#[derive(Debug, Clone)]
pub struct AdaptiveAttack {
    sampler: AliasTable,
    targets: Option<Vec<usize>>,
    label: String,
}

impl AdaptiveAttack {
    /// Builds the attack from an attacker-designed distribution over `D`
    /// (weights need not be normalized).
    ///
    /// # Errors
    /// Propagates alias-table validation (empty / negative / all-zero).
    pub fn from_distribution(weights: &[f64]) -> Result<Self> {
        Ok(Self {
            sampler: AliasTable::new(weights)?,
            targets: None,
            label: "AA".to_string(),
        })
    }

    /// The paper's experimental instantiation (§VI-A.3): a uniformly-random
    /// attacker-designed distribution (Dirichlet(1, …, 1) draw).
    pub fn random<R: Rng + ?Sized>(domain: Domain, rng: &mut R) -> Self {
        let weights = random_distribution(domain.size(), rng);
        Self {
            sampler: AliasTable::new(&weights).expect("random distribution is valid"),
            targets: None,
            label: "AA".to_string(),
        }
    }

    /// The uniform-over-targets special case (used by [`crate::MgaSampled`]).
    ///
    /// # Panics
    /// Panics if `targets` is empty or contains out-of-domain items.
    pub fn uniform_over(domain: Domain, targets: Vec<usize>, label: &str) -> Self {
        assert!(!targets.is_empty(), "target set must be non-empty");
        assert!(
            targets.iter().all(|&t| domain.contains(t)),
            "targets must lie in the domain"
        );
        let mut weights = vec![0.0; domain.size()];
        for &t in &targets {
            weights[t] = 1.0;
        }
        Self {
            sampler: AliasTable::new(&weights).expect("uniform target weights valid"),
            targets: Some(targets),
            label: label.to_string(),
        }
    }

    /// The attacker-designed distribution `P` this attack samples from.
    pub fn distribution(&self) -> &[f64] {
        self.sampler.probabilities()
    }
}

impl PoisoningAttack for AdaptiveAttack {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        (0..m)
            .map(|_| {
                let item = self.sampler.sample(rng);
                protocol.encode_clean(item, rng)
            })
            .collect()
    }

    fn targets(&self) -> Option<&[usize]> {
        self.targets.as_deref()
    }
}

/// A *camouflaged* adaptive attack (extension beyond the paper; see
/// EXPERIMENTS.md "AA on unary encodings").
///
/// The plain adaptive attack sends raw clean encodings. For OUE that is a
/// one-hot vector with a single set bit — far fewer than the
/// `p + (d−1)q ≈ q·d` bits a genuine perturbed report carries, which (a)
/// makes the reports trivially distinguishable and (b) *depresses* every
/// item's debiased frequency rather than promoting the sampled one. The
/// camouflaged variant pads OUE reports with random extra bits up to the
/// expected genuine popcount, making each report statistically similar to
/// a genuine one while still deterministically supporting the sampled item.
/// GRR and OLH clean encodings are already maximally genuine-looking, so
/// they are unchanged.
#[derive(Debug, Clone)]
pub struct CamouflagedAdaptive {
    inner: AdaptiveAttack,
}

impl CamouflagedAdaptive {
    /// Camouflaged attack with a per-trial random designed distribution.
    pub fn random<R: Rng + ?Sized>(domain: Domain, rng: &mut R) -> Self {
        let mut inner = AdaptiveAttack::random(domain, rng);
        inner.label = "AA-C".to_string();
        Self { inner }
    }

    /// Camouflaged attack over an explicit distribution.
    ///
    /// # Errors
    /// Propagates alias-table validation.
    pub fn from_distribution(weights: &[f64]) -> Result<Self> {
        let mut inner = AdaptiveAttack::from_distribution(weights)?;
        inner.label = "AA-C".to_string();
        Ok(Self { inner })
    }
}

impl PoisoningAttack for CamouflagedAdaptive {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        match protocol {
            AnyProtocol::Oue(oue) => {
                let d = oue.domain().size();
                let popcount = (oue.expected_ones().round() as usize).clamp(1, d);
                (0..m)
                    .map(|_| {
                        let item = self.inner.sampler.sample(rng);
                        let mut bits = ldp_common::BitVec::zeros(d);
                        bits.set_one(item);
                        let mut remaining = popcount - 1;
                        while remaining > 0 {
                            let v = rng.gen_range(0..d);
                            if !bits.get(v) {
                                bits.set_one(v);
                                remaining -= 1;
                            }
                        }
                        Report::Oue(bits)
                    })
                    .collect()
            }
            // GRR / OLH clean encodings are already genuine-shaped.
            _ => self.inner.craft(protocol, m, rng),
        }
    }

    fn targets(&self) -> Option<&[usize]> {
        self.inner.targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_protocols::{CountAccumulator, ProtocolKind};

    #[test]
    fn random_distribution_covers_domain() {
        let mut rng = rng_from_seed(1);
        let aa = AdaptiveAttack::random(Domain::new(50).unwrap(), &mut rng);
        assert_eq!(aa.distribution().len(), 50);
        let sum: f64 = aa.distribution().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(aa.targets().is_none());
        assert_eq!(aa.name(), "AA");
    }

    #[test]
    fn from_distribution_validates() {
        assert!(AdaptiveAttack::from_distribution(&[]).is_err());
        assert!(AdaptiveAttack::from_distribution(&[0.0, 0.0]).is_err());
        assert!(AdaptiveAttack::from_distribution(&[0.2, 0.8]).is_ok());
    }

    #[test]
    fn uniform_over_targets_only_samples_targets() {
        let domain = Domain::new(20).unwrap();
        let aa = AdaptiveAttack::uniform_over(domain, vec![4, 9, 14], "MGA-S");
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(2);
        let reports = aa.craft(&proto, 1000, &mut rng);
        for r in &reports {
            match r {
                Report::Grr(v) => assert!([4u32, 9, 14].contains(v)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(aa.targets().unwrap(), &[4, 9, 14]);
    }

    #[test]
    fn malicious_frequency_sum_matches_learning_constant_grr_oue() {
        // The identity behind Eq. (21): for GRR and OUE, each clean
        // encoding supports exactly one item, so Σ_v C_Y(v) = m *exactly*
        // and the debiased frequencies sum to (1 − q·d)/(p − q)
        // deterministically.
        let domain = Domain::new(24).unwrap();
        let mut rng = rng_from_seed(3);
        let aa = AdaptiveAttack::random(domain, &mut rng);
        for kind in [ProtocolKind::Grr, ProtocolKind::Oue] {
            let proto = kind.build(0.5, domain).unwrap();
            let m = 5_000;
            let reports = aa.craft(&proto, m, &mut rng);
            let mut acc = CountAccumulator::new(domain);
            acc.add_all(&proto, &reports);
            let freqs = acc.frequencies(proto.params()).unwrap();
            let total: f64 = freqs.iter().sum();
            let expect = proto.params().malicious_frequency_sum();
            assert!(
                (total - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "{kind:?}: total={total}, expect={expect}"
            );
        }
    }

    #[test]
    fn camouflaged_oue_reports_look_genuine_but_support_sampled_item() {
        let domain = Domain::new(64).unwrap();
        let proto = ProtocolKind::Oue.build(0.5, domain).unwrap();
        let oue = match &proto {
            ldp_protocols::AnyProtocol::Oue(o) => *o,
            _ => unreachable!(),
        };
        let mut weights = vec![0.0; 64];
        weights[11] = 1.0; // deterministic sampled item
        let attack = CamouflagedAdaptive::from_distribution(&weights).unwrap();
        let mut rng = rng_from_seed(9);
        let expected = oue.expected_ones().round() as usize;
        for r in attack.craft(&proto, 40, &mut rng) {
            match r {
                Report::Oue(bits) => {
                    assert!(bits.get(11), "sampled item must be supported");
                    assert_eq!(bits.count_ones(), expected, "genuine-looking popcount");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn camouflaged_neutralizes_the_frequency_sum_for_oue() {
        // Raw clean encodings give the (very negative) Eq. (21) sum because
        // they carry one set bit instead of the genuine ≈ q·d; the
        // camouflaged variant pads to the genuine popcount, so its malicious
        // frequency sum lands near zero (within popcount-rounding of it) —
        // the mechanics behind the AA-on-OUE discussion in EXPERIMENTS.md.
        let domain = Domain::new(64).unwrap();
        let proto = ProtocolKind::Oue.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(10);
        let camo = CamouflagedAdaptive::random(domain, &mut rng);
        let reports = camo.craft(&proto, 20_000, &mut rng);
        let mut acc = CountAccumulator::new(domain);
        acc.add_all(&proto, &reports);
        let total: f64 = acc.frequencies(proto.params()).unwrap().iter().sum();
        let raw_constant = proto.params().malicious_frequency_sum();
        assert!(
            raw_constant < -100.0,
            "raw Eq. 21 constant is very negative"
        );
        assert!(
            total.abs() < 5.0,
            "camouflaged sum should be near zero, got {total}"
        );
    }

    #[test]
    fn olh_clean_encodings_support_colliding_items_too() {
        // For OLH a clean encoding (H, H(t)) also supports every item that
        // collides with t under H (probability q = 1/g each), so the true
        // malicious frequency sum is (1 − q)/(p − q) — *not* the paper's
        // Eq. (21) constant. LDPRecover nevertheless uses Eq. (21); the
        // discrepancy is absorbed by the norm-sub refinement (see
        // DESIGN.md §6 and the `solvers` ablation bench).
        let domain = Domain::new(24).unwrap();
        let mut rng = rng_from_seed(4);
        let aa = AdaptiveAttack::random(domain, &mut rng);
        let proto = ProtocolKind::Olh.build(0.5, domain).unwrap();
        let m = 60_000;
        let reports = aa.craft(&proto, m, &mut rng);
        let mut acc = CountAccumulator::new(domain);
        acc.add_all(&proto, &reports);
        let freqs = acc.frequencies(proto.params()).unwrap();
        let total: f64 = freqs.iter().sum();
        let params = proto.params();
        let collision_aware = (1.0 - params.q()) / (params.p() - params.q());
        assert!(
            (total - collision_aware).abs() < 0.05 * collision_aware.abs(),
            "total={total}, collision-aware={collision_aware}"
        );
        // And it is far from the paper's constant for this (d, g).
        let paper = params.malicious_frequency_sum();
        assert!(
            (total - paper).abs() > 10.0,
            "paper constant {paper} too close"
        );
    }
}
