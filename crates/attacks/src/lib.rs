#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Poisoning attacks against LDP frequency estimation.
//!
//! Implements every attack the LDPRecover paper evaluates (§II, §V-C,
//! §VI-A.3, §VII-B, §VII-C):
//!
//! * [`manip::Manip`] — the untargeted manipulation attack of Cheu et al.
//!   (S&P 2021): uniform malicious reports over a sampled sub-domain `H ⊆ D`.
//! * [`adaptive::AdaptiveAttack`] — the paper's unifying attack model: the
//!   attacker designs a distribution `P` over the encoded domain and samples
//!   malicious reports from it (clean encodings, bypassing perturbation).
//! * [`mga::Mga`] — the *precise* maximal gain attack of Cao et al. (USENIX
//!   Security 2021): per-protocol crafted reports that support **all** `r`
//!   target items at once where the encoding allows it (OUE bit-setting with
//!   padding, OLH seed search), falling back to one target per report for
//!   GRR. This is what reproduces the paper's frequency-gain magnitudes.
//! * [`mga::MgaSampled`] — the paper's sampling-based simplification of MGA
//!   (uniform clean encodings over the target set), i.e. the adaptive attack
//!   with `P` uniform on `T`.
//! * [`ipa::InputPoisoning`] — input poisoning (§VII-B): malicious users
//!   choose adversarial *inputs* but follow the perturbation protocol.
//! * [`multi::MultiAttack`] — the multi-attacker composition of §VII-C.
//!
//! All attacks implement [`traits::PoisoningAttack`] (object-safe: the RNG
//! is passed as `&mut dyn RngCore`), and [`kind::AttackKind`] provides a
//! serializable factory that instantiates per-trial randomized attack state
//! (target selection, attacker-designed distributions).

pub mod adaptive;
pub mod ipa;
pub mod kind;
pub mod manip;
pub mod mga;
pub mod multi;
pub mod traits;

pub use adaptive::{AdaptiveAttack, CamouflagedAdaptive};
pub use ipa::InputPoisoning;
pub use kind::AttackKind;
pub use manip::Manip;
pub use mga::{Mga, MgaSampled};
pub use multi::MultiAttack;
pub use traits::PoisoningAttack;
