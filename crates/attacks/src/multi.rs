//! Multi-attacker poisoning (paper §VII-C).
//!
//! Several attackers control disjoint groups of malicious users, each
//! sampling from its own attacker-designed distribution. The paper's
//! observation: this is equivalent to a single adaptive attacker sampling
//! from the user-weighted mixture of the distributions, so LDPRecover
//! applies unchanged (validated by Fig. 10).

use ldp_protocols::{AnyProtocol, Report};
use rand::{Rng as _, RngCore};

use crate::traits::PoisoningAttack;

/// A composition of independent attackers sharing the malicious population.
pub struct MultiAttack {
    attackers: Vec<Box<dyn PoisoningAttack + Send + Sync>>,
}

impl MultiAttack {
    /// Composes the given attackers.
    ///
    /// # Panics
    /// Panics if `attackers` is empty.
    pub fn new(attackers: Vec<Box<dyn PoisoningAttack + Send + Sync>>) -> Self {
        assert!(!attackers.is_empty(), "need at least one attacker");
        Self { attackers }
    }

    /// Number of attackers.
    pub fn attacker_count(&self) -> usize {
        self.attackers.len()
    }
}

impl PoisoningAttack for MultiAttack {
    fn name(&self) -> String {
        format!("MUL({})", self.attackers.len())
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        // "Randomly assign malicious users to these attackers" (§VII-C):
        // each malicious user picks an attacker uniformly at random, then
        // that attacker crafts the user's report.
        let k = self.attackers.len();
        let mut assignment = vec![0usize; k];
        for _ in 0..m {
            assignment[rng.gen_range(0..k)] += 1;
        }
        let mut reports = Vec::with_capacity(m);
        for (attacker, &count) in self.attackers.iter().zip(&assignment) {
            reports.extend(attacker.craft(protocol, count, rng));
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveAttack;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::Domain;
    use ldp_protocols::ProtocolKind;

    fn five_random_attackers(domain: Domain, seed: u64) -> MultiAttack {
        let mut rng = rng_from_seed(seed);
        let attackers: Vec<Box<dyn PoisoningAttack + Send + Sync>> = (0..5)
            .map(|_| {
                Box::new(AdaptiveAttack::random(domain, &mut rng))
                    as Box<dyn PoisoningAttack + Send + Sync>
            })
            .collect();
        MultiAttack::new(attackers)
    }

    #[test]
    fn crafts_exactly_m_reports() {
        let domain = Domain::new(40).unwrap();
        let multi = five_random_attackers(domain, 1);
        assert_eq!(multi.attacker_count(), 5);
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(2);
        for m in [0usize, 1, 7, 1000] {
            assert_eq!(multi.craft(&proto, m, &mut rng).len(), m);
        }
    }

    #[test]
    fn mixture_matches_single_attacker_on_joint_distribution() {
        // Empirical item distribution of the multi-attack must match the
        // uniform mixture of the attackers' designed distributions.
        let domain = Domain::new(10).unwrap();
        let mut rng = rng_from_seed(3);
        let attackers: Vec<AdaptiveAttack> = (0..5)
            .map(|_| AdaptiveAttack::random(domain, &mut rng))
            .collect();
        let mixture: Vec<f64> = (0..10)
            .map(|v| attackers.iter().map(|a| a.distribution()[v]).sum::<f64>() / 5.0)
            .collect();

        let boxed: Vec<Box<dyn PoisoningAttack + Send + Sync>> = attackers
            .into_iter()
            .map(|a| Box::new(a) as Box<dyn PoisoningAttack + Send + Sync>)
            .collect();
        let multi = MultiAttack::new(boxed);
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let m = 200_000;
        let reports = multi.craft(&proto, m, &mut rng);
        let mut hist = [0usize; 10];
        for r in &reports {
            match r {
                ldp_protocols::Report::Grr(v) => hist[*v as usize] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        for v in 0..10 {
            let rate = hist[v] as f64 / m as f64;
            let p = mixture[v];
            let tol = 6.0 * (p * (1.0 - p) / m as f64).sqrt() + 1e-4;
            assert!((rate - p).abs() < tol, "item {v}: rate={rate}, p={p}");
        }
    }

    #[test]
    fn untargeted_composition_has_no_targets() {
        let domain = Domain::new(8).unwrap();
        let multi = five_random_attackers(domain, 4);
        assert!(multi.targets().is_none());
        assert_eq!(multi.name(), "MUL(5)");
    }
}
