//! The attack interface.

use ldp_protocols::{AnyProtocol, Report};
use rand::RngCore;

/// A poisoning attack controlling `m` malicious users.
///
/// Per the paper's threat model (§IV-A), malicious users send crafted data
/// *directly* to the server, bypassing the perturbation algorithm Ψ but not
/// the aggregation algorithm Φ. `craft` therefore produces wire-format
/// [`Report`]s in the protocol's encoded domain.
///
/// Object safety: the RNG is taken as `&mut dyn RngCore` so heterogeneous
/// attack sets (the multi-attacker scenario, the experiment grid) can be
/// stored as `Box<dyn PoisoningAttack>`.
pub trait PoisoningAttack {
    /// Display name, including salient parameters (e.g. `"MGA(r=10)"`).
    fn name(&self) -> String;

    /// Crafts the reports the `m` malicious users send to the server.
    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report>;

    /// The attacker-chosen target items, if this is a targeted attack.
    ///
    /// Used by the evaluation (frequency gain, Eq. (37)) and by the
    /// partial-knowledge recovery oracle — *never* by LDPRecover itself.
    fn targets(&self) -> Option<&[usize]> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::Domain;
    use ldp_protocols::ProtocolKind;

    /// A do-nothing attack to pin down the trait's object safety.
    struct Null;
    impl PoisoningAttack for Null {
        fn name(&self) -> String {
            "Null".into()
        }
        fn craft(&self, _: &AnyProtocol, _: usize, _: &mut dyn RngCore) -> Vec<Report> {
            Vec::new()
        }
    }

    #[test]
    fn trait_is_object_safe_and_default_targets_is_none() {
        let boxed: Box<dyn PoisoningAttack> = Box::new(Null);
        assert_eq!(boxed.name(), "Null");
        assert!(boxed.targets().is_none());
        let proto = ProtocolKind::Grr
            .build(0.5, Domain::new(4).unwrap())
            .unwrap();
        let mut rng = ldp_common::rng::rng_from_seed(0);
        assert!(boxed.craft(&proto, 3, &mut rng).is_empty());
    }
}
