//! The Maximal Gain Attack (Cao, Jia & Gong, USENIX Security 2021) in two
//! flavours.
//!
//! * [`Mga`] — the *precise* attack: each crafted report supports as many of
//!   the `r` attacker-chosen target items as the encoding allows.
//!   - **GRR**: a report names one item, so each malicious user reports a
//!     uniformly-chosen target.
//!   - **OUE**: the report sets all `r` target bits, padded with random
//!     non-target bits up to the expected genuine popcount
//!     `l = round(p + (d−1)q)` to evade count-based detection.
//!   - **OLH**: the report searches `seed_trials` random hash seeds and
//!     picks the `(seed, value)` pair supporting the most targets.
//!
//!   This flavour reproduces the frequency-gain magnitudes of the paper's
//!   Fig. 4 (e.g. FG ≈ m/(N·(p−q)) ≈ 8 for GRR on IPUMS at β = 0.05).
//!
//! * [`MgaSampled`] — the paper's unified-model simplification (§V-C,
//!   §VI-A.3): malicious reports are clean encodings of uniform samples
//!   from the target set, i.e. the adaptive attack with `P` uniform on `T`.

use ldp_common::hash::OlhHash;
use ldp_common::sampling::sample_distinct;
use ldp_common::{BitVec, Domain};
use ldp_protocols::{AnyProtocol, LdpFrequencyProtocol, Olh, Report};
use rand::{Rng, RngCore};

use crate::adaptive::AdaptiveAttack;
use crate::traits::PoisoningAttack;

/// Default number of random seeds the OLH crafting step examines per report.
pub const DEFAULT_OLH_SEED_TRIALS: usize = 50;

/// The precise maximal gain attack.
#[derive(Debug, Clone)]
pub struct Mga {
    targets: Vec<usize>,
    /// Pad OUE reports to the expected genuine popcount.
    pad: bool,
    /// Seeds examined per crafted OLH report.
    seed_trials: usize,
}

impl Mga {
    /// Builds MGA for an explicit target set.
    ///
    /// # Panics
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<usize>) -> Self {
        assert!(!targets.is_empty(), "MGA requires at least one target");
        Self {
            targets,
            pad: true,
            seed_trials: DEFAULT_OLH_SEED_TRIALS,
        }
    }

    /// Samples `r` distinct target items uniformly (the paper's setup).
    ///
    /// # Panics
    /// Panics if `r == 0` or `r > d`.
    pub fn random_targets<R: Rng + ?Sized>(domain: Domain, r: usize, rng: &mut R) -> Self {
        assert!(r >= 1 && r <= domain.size(), "need 1 ≤ r ≤ d");
        Self::new(sample_distinct(domain.size(), r, rng))
    }

    /// Disables OUE popcount padding (ablation: maximal but detectable).
    pub fn without_padding(mut self) -> Self {
        self.pad = false;
        self
    }

    /// Overrides the OLH seed-search budget.
    ///
    /// # Panics
    /// Panics if `trials == 0`.
    pub fn with_seed_trials(mut self, trials: usize) -> Self {
        assert!(trials >= 1, "seed search needs at least one trial");
        self.seed_trials = trials;
        self
    }

    fn craft_oue(&self, d: usize, expected_ones: f64, rng: &mut dyn RngCore) -> BitVec {
        let mut bits = BitVec::zeros(d);
        for &t in &self.targets {
            bits.set_one(t);
        }
        if self.pad {
            let l = expected_ones.round() as usize;
            let extra = l.saturating_sub(self.targets.len());
            let non_targets = d - self.targets.len();
            let extra = extra.min(non_targets);
            if extra > 0 {
                // Sample `extra` distinct non-target positions.
                let mut remaining = extra;
                while remaining > 0 {
                    let v = rng.gen_range(0..d);
                    if !bits.get(v) {
                        bits.set_one(v);
                        remaining -= 1;
                    }
                }
            }
        }
        bits
    }

    fn craft_olh(&self, olh: &Olh, rng: &mut dyn RngCore) -> Report {
        let g = olh.range();
        let mut best_seed = 0u64;
        let mut best_value = 0u32;
        let mut best_support = 0usize;
        let mut bucket = vec![0usize; g as usize];
        for _ in 0..self.seed_trials {
            let seed: u64 = rng.gen();
            let hasher = OlhHash::new(seed, g);
            bucket.fill(0);
            for &t in &self.targets {
                bucket[hasher.hash(t) as usize] += 1;
            }
            let (value, &support) = bucket
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .expect("g ≥ 2 buckets");
            if support > best_support {
                best_support = support;
                best_seed = seed;
                best_value = value as u32;
                if best_support == self.targets.len() {
                    break; // cannot do better
                }
            }
        }
        Report::Olh(ldp_protocols::olh::OlhReport {
            seed: best_seed,
            value: best_value,
        })
    }
}

impl PoisoningAttack for Mga {
    fn name(&self) -> String {
        format!("MGA(r={})", self.targets.len())
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        match protocol {
            AnyProtocol::Grr(_) => (0..m)
                .map(|_| {
                    let t = self.targets[rng.gen_range(0..self.targets.len())];
                    Report::Grr(t as u32)
                })
                .collect(),
            AnyProtocol::Oue(oue) => {
                let d = oue.domain().size();
                let expected = oue.expected_ones();
                (0..m)
                    .map(|_| Report::Oue(self.craft_oue(d, expected, rng)))
                    .collect()
            }
            AnyProtocol::Olh(olh) => (0..m).map(|_| self.craft_olh(olh, rng)).collect(),
            AnyProtocol::Sue(sue) => {
                // SUE shares OUE's report shape; pad to SUE's (denser)
                // expected popcount.
                let d = sue.domain().size();
                let expected = sue.expected_ones();
                (0..m)
                    .map(|_| Report::Sue(self.craft_oue(d, expected, rng)))
                    .collect()
            }
            AnyProtocol::Hr(hr) => {
                // Brute-force the column supporting the most targets once
                // (K ≤ 2d candidates), then send it from every fake user.
                let best = (0..hr.order())
                    .max_by_key(|&y| {
                        self.targets
                            .iter()
                            .filter(|&&t| {
                                ldp_protocols::hadamard::hadamard_positive(hr.row_of(t), y)
                            })
                            .count()
                    })
                    .expect("K ≥ 2 columns");
                vec![Report::Hr(best); m]
            }
        }
    }

    fn targets(&self) -> Option<&[usize]> {
        Some(&self.targets)
    }
}

/// The sampling-based MGA simplification used by the paper's unified attack
/// model: clean encodings of uniform target samples.
#[derive(Debug, Clone)]
pub struct MgaSampled {
    inner: AdaptiveAttack,
}

impl MgaSampled {
    /// Builds the sampled MGA for an explicit target set.
    ///
    /// # Panics
    /// Panics if `targets` is empty or out of domain.
    pub fn new(domain: Domain, targets: Vec<usize>) -> Self {
        let label = format!("MGA-S(r={})", targets.len());
        Self {
            inner: AdaptiveAttack::uniform_over(domain, targets, &label),
        }
    }

    /// Samples `r` distinct targets uniformly.
    ///
    /// # Panics
    /// Panics if `r == 0` or `r > d`.
    pub fn random_targets<R: Rng + ?Sized>(domain: Domain, r: usize, rng: &mut R) -> Self {
        assert!(r >= 1 && r <= domain.size(), "need 1 ≤ r ≤ d");
        Self::new(domain, sample_distinct(domain.size(), r, rng))
    }
}

impl PoisoningAttack for MgaSampled {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        self.inner.craft(protocol, m, rng)
    }

    fn targets(&self) -> Option<&[usize]> {
        self.inner.targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_protocols::{CountAccumulator, ProtocolKind};

    fn domain(d: usize) -> Domain {
        Domain::new(d).unwrap()
    }

    #[test]
    fn grr_reports_are_targets() {
        let mga = Mga::new(vec![1, 5, 9]);
        let proto = ProtocolKind::Grr.build(0.5, domain(16)).unwrap();
        let mut rng = rng_from_seed(1);
        for r in mga.craft(&proto, 300, &mut rng) {
            match r {
                Report::Grr(v) => assert!([1u32, 5, 9].contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oue_reports_support_all_targets_and_match_expected_popcount() {
        let d = 490;
        let proto = ProtocolKind::Oue.build(0.5, domain(d)).unwrap();
        let oue = match &proto {
            AnyProtocol::Oue(o) => *o,
            _ => unreachable!(),
        };
        let targets = vec![3usize, 77, 200, 444];
        let mga = Mga::new(targets.clone());
        let mut rng = rng_from_seed(2);
        let l = oue.expected_ones().round() as usize;
        for r in mga.craft(&proto, 50, &mut rng) {
            let bits = match r {
                Report::Oue(b) => b,
                other => panic!("unexpected {other:?}"),
            };
            for &t in &targets {
                assert!(bits.get(t), "target {t} not supported");
            }
            assert_eq!(bits.count_ones(), l.max(targets.len()));
        }
    }

    #[test]
    fn oue_without_padding_sets_only_targets() {
        let proto = ProtocolKind::Oue.build(0.5, domain(64)).unwrap();
        let mga = Mga::new(vec![10, 20]).without_padding();
        let mut rng = rng_from_seed(3);
        for r in mga.craft(&proto, 20, &mut rng) {
            match r {
                Report::Oue(b) => assert_eq!(b.count_ones(), 2),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn olh_seed_search_beats_random_encoding() {
        // With g = 3 and r = 6 targets, a random seed supports ~ r/g ≈ 2
        // targets; the searched seed must do strictly better on average.
        let proto = ProtocolKind::Olh.build(0.5, domain(128)).unwrap();
        let olh = match &proto {
            AnyProtocol::Olh(o) => *o,
            _ => unreachable!(),
        };
        let targets: Vec<usize> = vec![5, 17, 40, 77, 99, 120];
        let mga = Mga::new(targets.clone()).with_seed_trials(64);
        let mut rng = rng_from_seed(4);
        let reports = mga.craft(&proto, 200, &mut rng);
        let avg_support: f64 = reports
            .iter()
            .map(|r| targets.iter().filter(|&&t| proto.supports(r, t)).count() as f64)
            .sum::<f64>()
            / reports.len() as f64;
        let baseline = targets.len() as f64 / f64::from(olh.range());
        assert!(
            avg_support > baseline + 1.0,
            "avg_support={avg_support}, baseline={baseline}"
        );
    }

    #[test]
    fn frequency_gain_magnitude_matches_theory_for_grr() {
        // FG before recovery ≈ m / (N·(p−q)) summed over targets: with
        // β = 0.05, the paper reports ≈ 8 on IPUMS (d = 102, ε = 0.5).
        // Check the aggregation identity on a scaled-down population.
        let d = 102;
        let proto = ProtocolKind::Grr.build(0.5, domain(d)).unwrap();
        let n = 40_000usize;
        let m = 2_105; // β ≈ 0.05 ⇒ m = βN, N = n + m
        let mut rng = rng_from_seed(5);

        // Genuine users: everyone holds item 0 (frequencies are irrelevant
        // for the *gain*, which is additive).
        let mut acc = CountAccumulator::new(domain(d));
        for _ in 0..n {
            let r = proto.perturb(0, &mut rng);
            acc.add(&proto, &r);
        }
        let genuine = acc.frequencies(proto.params()).unwrap();

        let mga = Mga::random_targets(domain(d), 10, &mut rng);
        let reports = mga.craft(&proto, m, &mut rng);
        let mut poisoned_acc = acc.clone();
        poisoned_acc.add_all(&proto, &reports);
        let poisoned = poisoned_acc.frequencies(proto.params()).unwrap();

        let fg: f64 = mga
            .targets()
            .unwrap()
            .iter()
            .map(|&t| poisoned[t] - genuine[t])
            .sum();
        let params = proto.params();
        let expect = m as f64 / ((n + m) as f64 * (params.p() - params.q()));
        // The genuine share also dilutes by n/(n+m); expectation of FG is
        // ≈ expect − β·Σ_t f̃_X(t) ≈ expect here (targets have ~0 mass
        // unless 0 ∈ T). Allow 10% slack plus noise.
        assert!(
            (fg - expect).abs() < 0.15 * expect,
            "fg={fg}, expect={expect}"
        );
        assert!(expect > 5.0, "scenario should show a large gain");
    }

    #[test]
    fn sampled_mga_is_uniform_over_targets() {
        let mga = MgaSampled::random_targets(domain(50), 5, &mut rng_from_seed(6));
        let targets = mga.targets().unwrap().to_vec();
        assert_eq!(targets.len(), 5);
        let proto = ProtocolKind::Grr.build(0.5, domain(50)).unwrap();
        let mut rng = rng_from_seed(7);
        let mut hits = std::collections::HashMap::new();
        for r in mga.craft(&proto, 10_000, &mut rng) {
            match r {
                Report::Grr(v) => *hits.entry(v as usize).or_insert(0usize) += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(hits.len(), 5);
        for (&t, &c) in &hits {
            assert!(targets.contains(&t));
            // 10k samples over 5 targets: each ≈ 2000 ± 5σ.
            assert!((c as f64 - 2000.0).abs() < 5.0 * (10_000.0f64 * 0.2 * 0.8).sqrt());
        }
    }
}
