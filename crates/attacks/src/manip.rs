//! The untargeted manipulation attack of Cheu, Smith & Ullman (S&P 2021),
//! as instantiated by the LDPRecover evaluation (§VI-A.3): "we first sample
//! a malicious data domain `H` from the data domain `D`, and then draw
//! uniform samples (malicious data) from `H`".
//!
//! The attack degrades overall accuracy by concentrating spurious support
//! mass on `H`; it has no target set.

use ldp_common::sampling::sample_distinct;
use ldp_common::Domain;
use ldp_protocols::{AnyProtocol, LdpFrequencyProtocol, Report};
use rand::{Rng, RngCore};

use crate::traits::PoisoningAttack;

/// Manip: uniform clean encodings over a sampled sub-domain `H ⊆ D`.
#[derive(Debug, Clone)]
pub struct Manip {
    subdomain: Vec<usize>,
}

impl Manip {
    /// Builds the attack over an explicit sub-domain.
    ///
    /// # Panics
    /// Panics if `subdomain` is empty.
    pub fn new(subdomain: Vec<usize>) -> Self {
        assert!(!subdomain.is_empty(), "Manip sub-domain must be non-empty");
        Self { subdomain }
    }

    /// Samples a size-`h` sub-domain uniformly from `domain`.
    ///
    /// # Panics
    /// Panics if `h == 0` or `h > d`.
    pub fn sample<R: Rng + ?Sized>(domain: Domain, h: usize, rng: &mut R) -> Self {
        assert!(h >= 1 && h <= domain.size(), "need 1 ≤ h ≤ d");
        Self::new(sample_distinct(domain.size(), h, rng))
    }

    /// The malicious sub-domain `H`.
    pub fn subdomain(&self) -> &[usize] {
        &self.subdomain
    }
}

impl PoisoningAttack for Manip {
    fn name(&self) -> String {
        format!("Manip(|H|={})", self.subdomain.len())
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        (0..m)
            .map(|_| {
                let item = self.subdomain[rng.gen_range(0..self.subdomain.len())];
                protocol.encode_clean(item, rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_protocols::ProtocolKind;

    #[test]
    fn sample_respects_bounds() {
        let mut rng = rng_from_seed(1);
        let domain = Domain::new(20).unwrap();
        let attack = Manip::sample(domain, 5, &mut rng);
        assert_eq!(attack.subdomain().len(), 5);
        assert!(attack.subdomain().iter().all(|&v| v < 20));
        assert!(attack.targets().is_none());
    }

    #[test]
    #[should_panic(expected = "1 ≤ h ≤ d")]
    fn sample_rejects_oversized_subdomain() {
        let mut rng = rng_from_seed(2);
        let _ = Manip::sample(Domain::new(4).unwrap(), 5, &mut rng);
    }

    #[test]
    fn crafted_reports_stay_in_subdomain_for_grr() {
        let domain = Domain::new(30).unwrap();
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(3);
        let attack = Manip::new(vec![3, 7, 11]);
        let reports = attack.craft(&proto, 500, &mut rng);
        assert_eq!(reports.len(), 500);
        for r in &reports {
            match r {
                Report::Grr(v) => assert!([3u32, 7, 11].contains(v)),
                other => panic!("unexpected report {other:?}"),
            }
        }
    }

    #[test]
    fn crafted_reports_support_subdomain_items() {
        let domain = Domain::new(16).unwrap();
        let mut rng = rng_from_seed(4);
        let attack = Manip::new(vec![2, 9]);
        for kind in ProtocolKind::ALL {
            let proto = kind.build(0.5, domain).unwrap();
            let reports = attack.craft(&proto, 100, &mut rng);
            // Every clean encoding must support the item it encodes, so at
            // least one of the two sub-domain items is supported.
            for r in &reports {
                assert!(
                    proto.supports(r, 2) || proto.supports(r, 9),
                    "{kind:?} report supports neither sub-domain item"
                );
            }
        }
    }

    #[test]
    fn name_carries_subdomain_size() {
        assert_eq!(Manip::new(vec![1, 2]).name(), "Manip(|H|=2)");
    }
}
