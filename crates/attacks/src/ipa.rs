//! Input poisoning attacks (paper §VII-B).
//!
//! Under IPA malicious users choose adversarial *inputs* but then run the
//! genuine perturbation algorithm Ψ like every honest client. The paper
//! shows (Fig. 8) that this is 2–4 orders of magnitude weaker than the
//! general attack, and defends against it by pairing LDPRecover with the
//! k-means subset defense (Fig. 9).
//!
//! [`InputPoisoning`] wraps an input chooser: `MGA-IPA` is
//! `InputPoisoning::uniform_targets(..)`, an input-level adaptive attack is
//! `InputPoisoning::from_distribution(..)`.

use ldp_common::sampling::{sample_distinct, AliasTable};
use ldp_common::{Domain, Result};
use ldp_protocols::{AnyProtocol, LdpFrequencyProtocol, Report};
use rand::{Rng, RngCore};

use crate::traits::PoisoningAttack;

/// An input-poisoning attack: adversarial inputs, honest perturbation.
#[derive(Debug, Clone)]
pub struct InputPoisoning {
    sampler: AliasTable,
    targets: Option<Vec<usize>>,
    label: String,
}

impl InputPoisoning {
    /// MGA-IPA: every malicious user holds a uniformly-sampled target item.
    ///
    /// # Panics
    /// Panics if `targets` is empty or out of domain.
    pub fn uniform_targets(domain: Domain, targets: Vec<usize>) -> Self {
        assert!(!targets.is_empty(), "target set must be non-empty");
        assert!(
            targets.iter().all(|&t| domain.contains(t)),
            "targets must lie in the domain"
        );
        let mut weights = vec![0.0; domain.size()];
        for &t in &targets {
            weights[t] = 1.0;
        }
        let label = format!("MGA-IPA(r={})", targets.len());
        Self {
            sampler: AliasTable::new(&weights).expect("valid target weights"),
            targets: Some(targets),
            label,
        }
    }

    /// MGA-IPA with `r` uniformly-sampled targets.
    ///
    /// # Panics
    /// Panics if `r == 0` or `r > d`.
    pub fn random_targets<R: Rng + ?Sized>(domain: Domain, r: usize, rng: &mut R) -> Self {
        assert!(r >= 1 && r <= domain.size(), "need 1 ≤ r ≤ d");
        Self::uniform_targets(domain, sample_distinct(domain.size(), r, rng))
    }

    /// Input poisoning from an arbitrary input distribution.
    ///
    /// # Errors
    /// Propagates alias-table validation.
    pub fn from_distribution(weights: &[f64]) -> Result<Self> {
        Ok(Self {
            sampler: AliasTable::new(weights)?,
            targets: None,
            label: "AA-IPA".to_string(),
        })
    }
}

impl PoisoningAttack for InputPoisoning {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn craft(&self, protocol: &AnyProtocol, m: usize, rng: &mut dyn RngCore) -> Vec<Report> {
        (0..m)
            .map(|_| {
                let item = self.sampler.sample(rng);
                // The defining property of IPA: the report goes through Ψ.
                protocol.perturb(item, rng)
            })
            .collect()
    }

    fn targets(&self) -> Option<&[usize]> {
        self.targets.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mga::Mga;
    use ldp_common::rng::rng_from_seed;
    use ldp_protocols::{CountAccumulator, ProtocolKind};

    #[test]
    fn ipa_reports_are_perturbed_not_clean() {
        // For GRR with a single target, clean MGA reports would *all* equal
        // the target; IPA reports only do so with probability p < 1.
        let domain = Domain::new(32).unwrap();
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let ipa = InputPoisoning::uniform_targets(domain, vec![7]);
        let mut rng = rng_from_seed(1);
        let reports = ipa.craft(&proto, 2_000, &mut rng);
        let on_target = reports
            .iter()
            .filter(|r| matches!(r, Report::Grr(7)))
            .count();
        let p = proto.params().p();
        let rate = on_target as f64 / 2_000.0;
        assert!(rate < 0.5, "rate={rate} too high for ε=0.5 GRR");
        let tol = 5.0 * (p * (1.0 - p) / 2_000.0).sqrt();
        assert!((rate - p).abs() < tol, "rate={rate}, p={p}");
    }

    #[test]
    fn ipa_gain_is_much_weaker_than_general_mga() {
        // The Fig. 8 phenomenon, in miniature: the raw support count MGA
        // adds to a target is ~m (every crafted OUE report sets the bit),
        // while IPA adds only ~m·p.
        let domain = Domain::new(64).unwrap();
        let proto = ProtocolKind::Oue.build(0.5, domain).unwrap();
        let targets = vec![5usize];
        let m = 4_000;
        let mut rng = rng_from_seed(2);

        let mga_reports = Mga::new(targets.clone()).craft(&proto, m, &mut rng);
        let ipa_reports =
            InputPoisoning::uniform_targets(domain, targets.clone()).craft(&proto, m, &mut rng);

        let count_on = |reports: &[Report]| -> u64 {
            let mut acc = CountAccumulator::new(domain);
            acc.add_all(&proto, reports);
            acc.counts()[5]
        };
        let mga_count = count_on(&mga_reports);
        let ipa_count = count_on(&ipa_reports);
        assert_eq!(mga_count, m as u64, "precise MGA always sets the bit");
        assert!(
            (ipa_count as f64) < 0.6 * m as f64,
            "IPA count {ipa_count} should be ≈ m/2"
        );
    }

    #[test]
    fn from_distribution_validates() {
        assert!(InputPoisoning::from_distribution(&[]).is_err());
        assert!(InputPoisoning::from_distribution(&[1.0, 3.0]).is_ok());
    }

    #[test]
    fn random_targets_exposes_target_set() {
        let mut rng = rng_from_seed(3);
        let ipa = InputPoisoning::random_targets(Domain::new(100).unwrap(), 10, &mut rng);
        assert_eq!(ipa.targets().unwrap().len(), 10);
        assert!(ipa.name().contains("MGA-IPA"));
    }
}
