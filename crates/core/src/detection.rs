//! The Detection baseline (paper §VI-A.5).
//!
//! Adapted from the countermeasures of Cao et al.: given the (partial
//! knowledge) target set, the server removes every report whose support of
//! the targets is statistically implausible for a genuine user, then
//! re-estimates frequencies from the survivors. The paper's one-line
//! description — "identifies users as malicious if their reported data
//! matches the target items" — is made precise per protocol:
//!
//! * A genuine report supports each target independently with probability
//!   at most `q` (non-holders) or `p` (the single held item), so the number
//!   of *targets* supported is stochastically dominated by
//!   `1 + Binomial(r−1, q)`-ish mass. We flag a report when its target
//!   support count reaches the smallest threshold `τ` with
//!   `P[Binomial(r, q) ≥ τ] ≤ fpr` (default 1%).
//! * For GRR (`r` targets, single-item support) this reduces to `τ = 1`:
//!   any report naming a target is removed — exactly the indiscriminate
//!   behaviour the paper criticizes ("genuine users with the target items
//!   are incorrectly removed").
//! * For OUE, precise-MGA reports support all `r` targets and are caught
//!   with certainty once `τ ≤ r`; for OLH the seed-searched reports support
//!   most targets and overwhelmingly exceed `τ`.

use ldp_common::{LdpError, Result};
use ldp_protocols::{AnyProtocol, LdpFrequencyProtocol, Report};
use serde::{Deserialize, Serialize};

/// Detection baseline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    targets: Vec<usize>,
    /// Acceptable false-positive rate for genuine reports.
    fpr: f64,
}

impl Detection {
    /// Creates the baseline for a known target set (default 1% FPR budget).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the target set is empty.
    pub fn new(targets: Vec<usize>) -> Result<Self> {
        if targets.is_empty() {
            return Err(LdpError::invalid("Detection requires at least one target"));
        }
        Ok(Self { targets, fpr: 0.01 })
    }

    /// Overrides the false-positive-rate budget (must lie in (0, 1)).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for out-of-range budgets.
    pub fn with_fpr(mut self, fpr: f64) -> Result<Self> {
        if !(fpr > 0.0 && fpr < 1.0) {
            return Err(LdpError::invalid(format!(
                "fpr must be in (0,1), got {fpr}"
            )));
        }
        self.fpr = fpr;
        Ok(self)
    }

    /// The support-count threshold `τ`: smallest `τ ≥ 1` such that a
    /// genuine non-holder (target support ~ Binomial(r, q)) is flagged with
    /// probability ≤ `fpr` — capped at the maximum target support a single
    /// report can physically provide (1 for GRR, whose reports name one
    /// item; `r` for the vector/hash encodings). The GRR cap recovers the
    /// paper's literal rule: remove any report matching a target item.
    pub fn threshold(&self, protocol: &AnyProtocol) -> usize {
        let r = self.targets.len();
        let q = protocol.params().q();
        let max_support = match protocol {
            AnyProtocol::Grr(_) => 1,
            AnyProtocol::Oue(_)
            | AnyProtocol::Olh(_)
            | AnyProtocol::Sue(_)
            | AnyProtocol::Hr(_) => r,
        };
        // Walk the binomial upper tail until it dips below the budget.
        let mut tau = r + 1; // sentinel: nothing flagged
        for t in (1..=r).rev() {
            if binomial_upper_tail(r, q, t) <= self.fpr {
                tau = t;
            } else {
                break;
            }
        }
        tau.min(max_support)
    }

    /// Keep-mask over reports: `false` means flagged as malicious.
    pub fn keep_mask(&self, protocol: &AnyProtocol, reports: &[Report]) -> Vec<bool> {
        let tau = self.threshold(protocol);
        reports
            .iter()
            .map(|report| {
                let support = self
                    .targets
                    .iter()
                    .filter(|&&t| protocol.supports(report, t))
                    .count();
                support < tau
            })
            .collect()
    }

    /// Removes flagged reports and re-estimates frequencies from the rest.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] when every report is flagged (degenerate
    /// small-sample case).
    pub fn recover(&self, protocol: &AnyProtocol, reports: &[Report]) -> Result<Vec<f64>> {
        let mask = self.keep_mask(protocol, reports);
        Self::estimate_from_mask(protocol, reports, &mask)
    }

    /// Re-estimates frequencies from the reports a keep-mask retains —
    /// the shared back half of [`Detection::recover`], exposed so callers
    /// that inspect the mask first (e.g. to classify the all-flagged
    /// degeneracy) do not re-implement the accumulation.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] when the mask keeps nothing.
    pub fn estimate_from_mask(
        protocol: &AnyProtocol,
        reports: &[Report],
        mask: &[bool],
    ) -> Result<Vec<f64>> {
        let mut acc = ldp_protocols::CountAccumulator::new(protocol.domain());
        for (report, &keep) in reports.iter().zip(mask) {
            if keep {
                acc.add(protocol, report);
            }
        }
        acc.frequencies(protocol.params())
    }

    /// The configured targets.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }
}

/// Exact binomial upper tail `P[Binomial(n, p) ≥ k]`, computed by direct
/// summation (the `n ≤ r` here is tiny).
fn binomial_upper_tail(n: usize, p: f64, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let mut tail = 0.0f64;
    // pmf(i) computed iteratively: pmf(0) = (1-p)^n,
    // pmf(i+1) = pmf(i) · (n-i)/(i+1) · p/(1-p).
    let mut pmf = (1.0 - p).powi(n as i32);
    if p >= 1.0 {
        return 1.0; // all mass at n ≥ k
    }
    let ratio = p / (1.0 - p);
    for i in 0..=n {
        if i >= k {
            tail += pmf;
        }
        if i < n {
            pmf *= (n - i) as f64 / (i + 1) as f64 * ratio;
        }
    }
    tail.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::Domain;
    use ldp_protocols::ProtocolKind;

    #[test]
    fn binomial_tail_exact_small_cases() {
        // Binomial(2, 0.5): P[≥1] = 0.75, P[≥2] = 0.25.
        assert!((binomial_upper_tail(2, 0.5, 1) - 0.75).abs() < 1e-12);
        assert!((binomial_upper_tail(2, 0.5, 2) - 0.25).abs() < 1e-12);
        assert_eq!(binomial_upper_tail(2, 0.5, 0), 1.0);
        assert_eq!(binomial_upper_tail(2, 0.5, 3), 0.0);
    }

    #[test]
    fn grr_threshold_is_one() {
        // GRR: q = 1/(d−1+e^ε) is small, so even one supported target is
        // already implausible at the 1% level for moderate d.
        let domain = Domain::new(102).unwrap();
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let det = Detection::new((0..10).collect()).unwrap();
        assert_eq!(det.threshold(&proto), 1);
    }

    #[test]
    fn oue_threshold_is_moderate() {
        // OUE at ε = 0.5: q ≈ 0.378; Binomial(10, .378) rarely reaches 9.
        let domain = Domain::new(490).unwrap();
        let proto = ProtocolKind::Oue.build(0.5, domain).unwrap();
        let det = Detection::new((0..10).collect()).unwrap();
        let tau = det.threshold(&proto);
        assert!((7..=10).contains(&tau), "tau={tau}");
    }

    #[test]
    fn flags_precise_mga_reports_and_keeps_most_genuine() {
        use ldp_attacks::{Mga, PoisoningAttack};
        let domain = Domain::new(102).unwrap();
        let mut rng = rng_from_seed(1);
        for kind in ProtocolKind::ALL {
            let proto = kind.build(0.5, domain).unwrap();
            let targets: Vec<usize> = (20..30).collect();
            let det = Detection::new(targets.clone()).unwrap();

            let malicious = Mga::new(targets.clone()).craft(&proto, 400, &mut rng);
            let genuine: Vec<Report> = (0..2000)
                .map(|i| proto.perturb(i % 102, &mut rng))
                .collect();

            let mal_kept = det
                .keep_mask(&proto, &malicious)
                .iter()
                .filter(|&&k| k)
                .count();
            let gen_kept = det
                .keep_mask(&proto, &genuine)
                .iter()
                .filter(|&&k| k)
                .count();
            // GRR: every crafted report names a target → all flagged.
            // OUE: crafted reports support all targets → all flagged.
            // OLH: the seed search often tops out below the binomial
            // threshold, so detection is leaky there (consistent with the
            // paper's finding that Detection underperforms LDPRecover).
            let mal_budget = match kind {
                ProtocolKind::Olh => 0.85,
                _ => 0.05,
            };
            assert!(
                (mal_kept as f64) < mal_budget * 400.0,
                "{kind:?}: kept {mal_kept}/400 malicious"
            );
            // Genuine survivors: the GRR rule also strips genuine reports
            // landing on targets (~10·q + holders), but the bulk survives.
            assert!(
                (gen_kept as f64) > 0.7 * 2000.0,
                "{kind:?}: kept {gen_kept}/2000 genuine"
            );
        }
    }

    #[test]
    fn recover_errors_when_everything_flagged() {
        let domain = Domain::new(4).unwrap();
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let det = Detection::new(vec![0, 1, 2, 3]).unwrap();
        // All reports name targets (the entire domain is targeted).
        let reports = vec![Report::Grr(0), Report::Grr(3)];
        assert!(det.recover(&proto, &reports).is_err());
    }

    #[test]
    fn validation() {
        assert!(Detection::new(vec![]).is_err());
        let det = Detection::new(vec![1]).unwrap();
        assert!(det.clone().with_fpr(0.0).is_err());
        assert!(det.clone().with_fpr(1.0).is_err());
        assert!(det.with_fpr(0.05).is_ok());
    }
}
