//! Step 2 — malicious frequency learning (paper §V-C, §V-D).
//!
//! The server never observes `f̃_Y` directly. Under the adaptive attack
//! model, however, its *sum* is a protocol constant (Eq. 20/21):
//!
//! ```text
//! Σ_v f̃_Y(v) = (1 − q·d)/(p − q)
//! ```
//!
//! because each crafted report bypasses perturbation (supporting exactly the
//! one encoded item) while aggregation still debiases it as if genuine.
//!
//! * **Non-knowledge** (Eq. 26): split `D` into `D₀ = {v : f̃_Z(v) ≤ 0}`
//!   (implausible attack victims) and `D₁ = D \ D₀`; spread the sum
//!   uniformly over `D₁`.
//! * **Partial knowledge** (Eq. 28–30): with the target set `T` known,
//!   assign non-targets `−q·d/(|D′|(p−q))` and split the remainder
//!   uniformly over the targets.
//!
//! [`MaliciousSumModel`] additionally offers a collision-aware OLH variant
//! (an extension beyond the paper — see DESIGN.md §6): OLH clean encodings
//! also support hash-colliding items, making the true sum `(1−q)/(p−q)`.

use ldp_common::{LdpError, Result};
use ldp_protocols::PureParams;
use serde::{Deserialize, Serialize};

/// Which closed form the learning step uses for `Σ_v f̃_Y(v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MaliciousSumModel {
    /// The paper's Eq. (21): `(1 − q·d)/(p − q)`. Exact for GRR and OUE
    /// clean encodings; for OLH it ignores hash collisions.
    #[default]
    Paper,
    /// Collision-aware variant: `(1 − q)/(p − q)`, the exact expectation for
    /// single-item clean encodings whose support set includes each other
    /// item independently with probability `q` (OLH).
    CollisionAware,
}

impl MaliciousSumModel {
    /// Evaluates the malicious frequency sum for the given protocol.
    pub fn sum(self, params: PureParams) -> f64 {
        match self {
            MaliciousSumModel::Paper => params.malicious_frequency_sum(),
            MaliciousSumModel::CollisionAware => (1.0 - params.q()) / (params.p() - params.q()),
        }
    }
}

/// Non-knowledge malicious estimate (Eq. 26): uniform over
/// `D₁ = {v : f̃_Z(v) > 0}`, zero elsewhere.
///
/// Falls back to uniform over the whole domain when every poisoned
/// frequency is non-positive (a degenerate estimate can occur at tiny `n`).
///
/// # Errors
/// [`LdpError::EmptyInput`] when `poisoned` is empty.
pub fn non_knowledge_estimate(poisoned: &[f64], malicious_sum: f64) -> Result<Vec<f64>> {
    non_knowledge_estimate_with_fallback(poisoned, malicious_sum, 0.0)
}

/// [`non_knowledge_estimate`] with a robustness knob (extension beyond the
/// paper): when `|D₁| < min_fraction·d`, spread the sum uniformly over the
/// *whole* domain instead.
///
/// Rationale: Eq. (26)'s "positive poisoned frequency ⇒ plausibly attacked"
/// heuristic inverts for OUE-style encodings, where single-support
/// malicious reports *depress* every frequency; a nearly-empty `D₁` then
/// concentrates an enormous per-item correction on one or two items and
/// recovery degenerates to a near-one-hot vector. The uniform fallback
/// restores the norm-sub shift-invariance and recovers the distribution's
/// shape. `min_fraction = 0` reproduces the paper exactly.
///
/// # Errors
/// [`LdpError::EmptyInput`] when `poisoned` is empty;
/// [`LdpError::InvalidParameter`] when `min_fraction ∉ [0, 1]`.
pub fn non_knowledge_estimate_with_fallback(
    poisoned: &[f64],
    malicious_sum: f64,
    min_fraction: f64,
) -> Result<Vec<f64>> {
    if poisoned.is_empty() {
        return Err(LdpError::EmptyInput("poisoned frequencies"));
    }
    if !(0.0..=1.0).contains(&min_fraction) {
        return Err(LdpError::invalid(format!(
            "d1 fallback fraction must be in [0,1], got {min_fraction}"
        )));
    }
    let d = poisoned.len();
    let d1: Vec<usize> = (0..d).filter(|&v| poisoned[v] > 0.0).collect();
    let mut estimate = vec![0.0; d];
    if d1.is_empty() || (d1.len() as f64) < min_fraction * d as f64 {
        let share = malicious_sum / d as f64;
        estimate.fill(share);
        return Ok(estimate);
    }
    let share = malicious_sum / d1.len() as f64;
    for v in d1 {
        estimate[v] = share;
    }
    Ok(estimate)
}

/// Partial-knowledge malicious estimate (Eq. 30): with target set `T`,
///
/// ```text
/// f̃*_Y(v) = −q·d / (|D′|(p−q))                        for v ∈ D′ = D \ T
/// f̃*_Y(v) = (Σ_D f̃_Y − Σ_{D′} f̃_Y)/|D′′|             for v ∈ D′′ = T
/// ```
///
/// where `Σ_{D′} f̃_Y = −q·d/(p−q)` per Eq. (28). When `T = D` the entire
/// sum is spread uniformly over the targets.
///
/// # Errors
/// [`LdpError::InvalidParameter`] when `targets` is empty or contains
/// out-of-domain / duplicate items.
pub fn partial_knowledge_estimate(
    params: PureParams,
    targets: &[usize],
    malicious_sum: f64,
) -> Result<Vec<f64>> {
    let d = params.d();
    if targets.is_empty() {
        return Err(LdpError::invalid("partial knowledge requires ≥ 1 target"));
    }
    let mut is_target = vec![false; d];
    for &t in targets {
        if t >= d {
            return Err(LdpError::invalid(format!(
                "target {t} outside domain of size {d}"
            )));
        }
        if std::mem::replace(&mut is_target[t], true) {
            return Err(LdpError::invalid(format!("duplicate target {t}")));
        }
    }

    let q = params.q();
    let pq = params.p() - params.q();
    let non_target_count = d - targets.len();
    let mut estimate = vec![0.0; d];
    if non_target_count == 0 {
        let share = malicious_sum / d as f64;
        estimate.fill(share);
        return Ok(estimate);
    }

    // Eq. (28): the (approximate) total malicious mass on non-targets.
    let non_target_sum = -q * d as f64 / pq;
    let non_target_share = non_target_sum / non_target_count as f64;
    // Eq. (29): the remainder lands on the targets.
    let target_share = (malicious_sum - non_target_sum) / targets.len() as f64;
    for (v, slot) in estimate.iter_mut().enumerate() {
        *slot = if is_target[v] {
            target_share
        } else {
            non_target_share
        };
    }
    Ok(estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::Domain;

    fn params(d: usize) -> PureParams {
        // GRR-style at ε = 0.5.
        let e = 0.5f64.exp();
        let denom = d as f64 - 1.0 + e;
        PureParams::new(e / denom, 1.0 / denom, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn sum_models_agree_for_binary_domain() {
        // d = 1 would make them equal; check they differ for large d.
        let pp = params(100);
        let paper = MaliciousSumModel::Paper.sum(pp);
        let aware = MaliciousSumModel::CollisionAware.sum(pp);
        assert!(paper < aware);
        let expect_paper = (1.0 - pp.q() * 100.0) / (pp.p() - pp.q());
        assert!((paper - expect_paper).abs() < 1e-12);
        let expect_aware = (1.0 - pp.q()) / (pp.p() - pp.q());
        assert!((aware - expect_aware).abs() < 1e-12);
    }

    #[test]
    fn non_knowledge_spreads_uniformly_over_positive_items() {
        let poisoned = [0.5, -0.1, 0.3, 0.0, 0.2];
        let est = non_knowledge_estimate(&poisoned, 2.0).unwrap();
        // D1 = {0, 2, 4}: share 2/3 each; D0 = {1, 3}: zero.
        assert!((est[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(est[1], 0.0);
        assert!((est[2] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(est[3], 0.0);
        assert!((est[4] - 2.0 / 3.0).abs() < 1e-12);
        let total: f64 = est.iter().sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_knowledge_handles_all_non_positive() {
        let est = non_knowledge_estimate(&[-0.1, 0.0], 3.0).unwrap();
        assert!((est[0] - 1.5).abs() < 1e-12);
        assert!((est[1] - 1.5).abs() < 1e-12);
        assert!(non_knowledge_estimate(&[], 1.0).is_err());
    }

    #[test]
    fn non_knowledge_preserves_negative_sums() {
        // For OUE the sum constant is very negative; the spread must keep it.
        let poisoned = [0.2, 0.8];
        let est = non_knowledge_estimate(&poisoned, -100.0).unwrap();
        assert!((est.iter().sum::<f64>() + 100.0).abs() < 1e-9);
    }

    #[test]
    fn fallback_triggers_on_small_d1() {
        // Two of five items positive = 40% < 50% threshold ⇒ uniform.
        let poisoned = [0.5, -0.1, 0.3, -0.2, -0.05];
        let est = non_knowledge_estimate_with_fallback(&poisoned, 2.0, 0.5).unwrap();
        assert!(est.iter().all(|&x| (x - 0.4).abs() < 1e-12));
        // 40% ≥ 30% threshold ⇒ paper behaviour.
        let est = non_knowledge_estimate_with_fallback(&poisoned, 2.0, 0.3).unwrap();
        assert_eq!(est[1], 0.0);
        assert!((est[0] - 1.0).abs() < 1e-12);
        // Invalid fraction rejected.
        assert!(non_knowledge_estimate_with_fallback(&poisoned, 2.0, 1.5).is_err());
        assert!(non_knowledge_estimate_with_fallback(&poisoned, 2.0, -0.1).is_err());
    }

    #[test]
    fn partial_knowledge_matches_equation_30() {
        let pp = params(10);
        let sum = MaliciousSumModel::Paper.sum(pp);
        let targets = vec![2usize, 7];
        let est = partial_knowledge_estimate(pp, &targets, sum).unwrap();

        let q = pp.q();
        let pq = pp.p() - pp.q();
        let non_target_each = -q * 10.0 / (8.0 * pq);
        // Eq. (29)/(30): target share = (sum + qd/(p−q))/r = 1/(r(p−q)).
        let target_each = 1.0 / (2.0 * pq);
        for (v, &actual) in est.iter().enumerate() {
            let expect = if targets.contains(&v) {
                target_each
            } else {
                non_target_each
            };
            assert!(
                (actual - expect).abs() < 1e-12,
                "item {v}: est={actual}, expect={expect}"
            );
        }
        // Totals must add back to the learned sum.
        assert!((est.iter().sum::<f64>() - sum).abs() < 1e-9);
    }

    #[test]
    fn partial_knowledge_validates_targets() {
        let pp = params(5);
        assert!(partial_knowledge_estimate(pp, &[], 1.0).is_err());
        assert!(partial_knowledge_estimate(pp, &[5], 1.0).is_err());
        assert!(partial_knowledge_estimate(pp, &[1, 1], 1.0).is_err());
    }

    #[test]
    fn partial_knowledge_all_targets_degenerates_to_uniform() {
        let pp = params(4);
        let est = partial_knowledge_estimate(pp, &[0, 1, 2, 3], 2.0).unwrap();
        assert!(est.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }
}
