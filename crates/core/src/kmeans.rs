//! The k-means subset defense against input poisoning and its LDPRecover
//! integration (paper §VII-B, Fig. 9).
//!
//! Under IPA the malicious reports are genuinely perturbed, so the learning
//! constant of Eq. (21) does not apply (malicious aggregated frequencies sum
//! to ≈ 1 like genuine ones). The k-means defense of Du et al. (ICDE 2023)
//! instead exploits *distributional* deviation: sample `G` user subsets at
//! rate `ξ`, estimate a frequency vector per subset, cluster the vectors
//! into two groups (Lloyd's k-means, k = 2), and trust the majority cluster.
//!
//! * **K-means alone**: estimate from the union of majority-cluster subsets.
//! * **LDPRecover-KM**: additionally learn a malicious frequency vector from
//!   the centroid difference — under IPA the malicious mixture component is
//!   `f_Z = (1−w)·f_X + w·f_Y` per subset, so the (minority − majority)
//!   centroid difference points along `f_Y − f_X`; its positive part,
//!   normalized to sum 1 (the IPA malicious mass), feeds the genuine
//!   frequency estimator of Eq. (19). This is the integration the paper
//!   reports as "48.9% better than k-means alone" for GRR.

use ldp_common::rng::uniform_index;
use ldp_common::vecmath::normalize_to_simplex_sum;
use ldp_common::{LdpError, Result};
use ldp_protocols::{AnyProtocol, CountAccumulator, LdpFrequencyProtocol, Report};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::recover::{LdpRecover, RecoveryOutcome};

/// Configuration of the subset-clustering defense.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansDefense {
    /// Number of subsets `G` sampled from the report stream.
    pub groups: usize,
    /// Per-subset sample rate `ξ ∈ (0, 1]` (fraction of all reports).
    pub sample_rate: f64,
    /// Lloyd iterations cap.
    pub max_iters: usize,
}

impl Default for KMeansDefense {
    fn default() -> Self {
        Self {
            groups: 20,
            sample_rate: 0.1,
            max_iters: 100,
        }
    }
}

/// What the defense produced.
#[derive(Debug, Clone)]
pub struct KMeansOutcome {
    /// Frequencies estimated from the majority ("genuine") cluster.
    pub genuine_estimate: Vec<f64>,
    /// Centroid of the majority cluster.
    pub genuine_centroid: Vec<f64>,
    /// Centroid of the minority ("malicious") cluster, if it is non-empty.
    pub malicious_centroid: Option<Vec<f64>>,
    /// Per-subset cluster assignment (`true` = majority cluster).
    pub assignments: Vec<bool>,
}

impl KMeansDefense {
    /// Creates the defense with the given subset count and sample rate.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `groups < 2` or
    /// `ξ ∉ (0, 1]`.
    pub fn new(groups: usize, sample_rate: f64) -> Result<Self> {
        if groups < 2 {
            return Err(LdpError::invalid("k-means defense needs ≥ 2 subsets"));
        }
        if !(sample_rate > 0.0 && sample_rate <= 1.0) {
            return Err(LdpError::invalid(format!(
                "sample rate must be in (0,1], got {sample_rate}"
            )));
        }
        Ok(Self {
            groups,
            sample_rate,
            ..Self::default()
        })
    }

    /// Runs the defense over the (mixed genuine + malicious) report stream.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] when there are no reports or the sampled
    /// subsets would be empty.
    pub fn run<R: Rng + ?Sized>(
        &self,
        protocol: &AnyProtocol,
        reports: &[Report],
        rng: &mut R,
    ) -> Result<KMeansOutcome> {
        if reports.is_empty() {
            return Err(LdpError::EmptyInput("reports for the k-means defense"));
        }
        let subset_size = ((reports.len() as f64) * self.sample_rate).round() as usize;
        if subset_size == 0 {
            return Err(LdpError::EmptyInput("sampled subset (ξ·N rounded to 0)"));
        }
        let domain = protocol.domain();
        let params = protocol.params();

        // Per-subset frequency vectors (sampling with replacement across
        // subsets, without within a subset — a bootstrap over users).
        let mut subset_members: Vec<Vec<usize>> = Vec::with_capacity(self.groups);
        let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(self.groups);
        for _ in 0..self.groups {
            let members = ldp_common::sampling::sample_distinct(reports.len(), subset_size, rng);
            let mut acc = CountAccumulator::new(domain);
            for &i in &members {
                acc.add(protocol, &reports[i]);
            }
            vectors.push(acc.frequencies(params)?);
            subset_members.push(members);
        }

        let (assign, centroids) = lloyd_two_means(&vectors, self.max_iters, rng);
        // Majority cluster = genuine.
        let ones = assign.iter().filter(|&&a| a).count();
        let majority_label = ones * 2 >= assign.len();
        let assignments: Vec<bool> = assign.iter().map(|&a| a == majority_label).collect();

        let genuine_centroid = centroids[usize::from(majority_label)].clone();
        let minority_count = assignments.iter().filter(|&&a| !a).count();
        let malicious_centroid = if minority_count > 0 {
            Some(centroids[usize::from(!majority_label)].clone())
        } else {
            None
        };

        // Estimate from the union of majority-cluster subsets (dedup users).
        let mut in_union = vec![false; reports.len()];
        for (members, &is_majority) in subset_members.iter().zip(&assignments) {
            if is_majority {
                for &i in members {
                    in_union[i] = true;
                }
            }
        }
        let mut acc = CountAccumulator::new(domain);
        for (i, report) in reports.iter().enumerate() {
            if in_union[i] {
                acc.add(protocol, report);
            }
        }
        let genuine_estimate = acc.frequencies(params)?;

        Ok(KMeansOutcome {
            genuine_estimate,
            genuine_centroid,
            malicious_centroid,
            assignments,
        })
    }

    /// LDPRecover-KM: learn the malicious frequency vector from the cluster
    /// structure and run the genuine frequency estimator + refinement on
    /// the full poisoned estimate.
    ///
    /// # Errors
    /// Propagates defense and recovery failures.
    pub fn recover_km<R: Rng + ?Sized>(
        &self,
        recover: &LdpRecover,
        protocol: &AnyProtocol,
        reports: &[Report],
        rng: &mut R,
    ) -> Result<RecoveryOutcome> {
        let outcome = self.run(protocol, reports, rng)?;
        Self::recover_from_outcome(recover, protocol, reports, &outcome)
    }

    /// LDPRecover-KM from an already-computed defense outcome (lets callers
    /// that also report the plain k-means estimate pay for one clustering
    /// pass, not two).
    ///
    /// # Errors
    /// Propagates estimation and recovery failures.
    pub fn recover_from_outcome(
        recover: &LdpRecover,
        protocol: &AnyProtocol,
        reports: &[Report],
        outcome: &KMeansOutcome,
    ) -> Result<RecoveryOutcome> {
        // Full poisoned estimate from all reports.
        let mut acc = CountAccumulator::new(protocol.domain());
        for report in reports {
            acc.add(protocol, report);
        }
        let poisoned = acc.frequencies(protocol.params())?;

        // Malicious direction: positive part of (minority − majority)
        // centroid difference, normalized to unit mass (under IPA the
        // aggregated malicious frequencies sum to ≈ 1).
        let malicious = match &outcome.malicious_centroid {
            Some(minority) => {
                let mut dir: Vec<f64> = minority
                    .iter()
                    .zip(&outcome.genuine_centroid)
                    .map(|(&hi, &lo)| (hi - lo).max(0.0))
                    .collect();
                normalize_to_simplex_sum(&mut dir);
                dir
            }
            // No malicious cluster found: assume uniform malicious mass
            // (the estimator then reduces to a mild rescale + refine).
            None => vec![1.0 / poisoned.len() as f64; poisoned.len()],
        };
        recover.recover_with_malicious(&poisoned, &malicious)
    }
}

/// Lloyd's algorithm specialized to k = 2 over dense `f64` vectors.
///
/// Returns per-point boolean assignments and the two centroids
/// (`centroids[0]` for label `false`, `centroids[1]` for `true`). Ties and
/// empty clusters are handled by re-seeding the empty centroid at the point
/// farthest from the other centroid.
fn lloyd_two_means<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    max_iters: usize,
    rng: &mut R,
) -> (Vec<bool>, [Vec<f64>; 2]) {
    let n = points.len();
    let dim = points[0].len();
    debug_assert!(n >= 2);

    // Seed: a random point and the point farthest from it (k-means++-lite).
    let first = uniform_index(rng, n);
    let far = (0..n)
        .max_by(|&a, &b| {
            sq_dist(&points[a], &points[first])
                .partial_cmp(&sq_dist(&points[b], &points[first]))
                .expect("finite distances")
        })
        .expect("non-empty points");
    let mut centroids = [points[first].clone(), points[far].clone()];
    let mut assign = vec![false; n];

    for _ in 0..max_iters {
        let mut changed = false;
        for (i, point) in points.iter().enumerate() {
            let label = sq_dist(point, &centroids[1]) < sq_dist(point, &centroids[0]);
            if assign[i] != label {
                assign[i] = label;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = [vec![0.0; dim], vec![0.0; dim]];
        let mut counts = [0usize; 2];
        for (point, &label) in points.iter().zip(&assign) {
            let c = usize::from(label);
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(point) {
                *s += x;
            }
        }
        for c in 0..2 {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point from the
                // other centroid.
                let other = &centroids[1 - c];
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(&points[a], other)
                            .partial_cmp(&sq_dist(&points[b], other))
                            .expect("finite distances")
                    })
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (slot, &s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *slot = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (assign, centroids)
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::Domain;
    use ldp_protocols::ProtocolKind;

    #[test]
    fn validation() {
        assert!(KMeansDefense::new(1, 0.5).is_err());
        assert!(KMeansDefense::new(10, 0.0).is_err());
        assert!(KMeansDefense::new(10, 1.5).is_err());
        assert!(KMeansDefense::new(10, 0.3).is_ok());
    }

    #[test]
    fn lloyd_separates_two_obvious_clusters() {
        let mut rng = rng_from_seed(1);
        let mut points = Vec::new();
        for i in 0..30 {
            let base = if i < 20 { 0.0 } else { 10.0 };
            points.push(vec![base + (i % 5) as f64 * 0.01, base]);
        }
        let (assign, centroids) = lloyd_two_means(&points, 50, &mut rng);
        // First 20 together, last 10 together.
        let first = assign[0];
        assert!(assign[..20].iter().all(|&a| a == first));
        assert!(assign[20..].iter().all(|&a| a != first));
        let lo = &centroids[usize::from(first)];
        let hi = &centroids[usize::from(!first)];
        assert!(lo[1] < 1.0 && hi[1] > 9.0);
    }

    #[test]
    fn defense_runs_and_majority_cluster_dominates() {
        let domain = Domain::new(16).unwrap();
        let proto = ProtocolKind::Grr.build(1.0, domain).unwrap();
        let mut rng = rng_from_seed(2);
        // 95% genuine holding uniform items, 5% IPA-on-target (item 3).
        let mut reports: Vec<Report> = (0..4000).map(|i| proto.perturb(i % 16, &mut rng)).collect();
        for _ in 0..200 {
            reports.push(proto.perturb(3, &mut rng));
        }
        let defense = KMeansDefense::new(20, 0.2).unwrap();
        let out = defense.run(&proto, &reports, &mut rng).unwrap();
        let majority = out.assignments.iter().filter(|&&a| a).count();
        assert!(majority * 2 >= out.assignments.len());
        assert_eq!(out.genuine_estimate.len(), 16);
    }

    #[test]
    fn lloyd_handles_identical_points() {
        // Degenerate input: all subsets identical. Lloyd must terminate
        // (re-seeding an empty cluster on the same point) and assign all
        // points to one cluster.
        let mut rng = rng_from_seed(9);
        let points = vec![vec![0.5, 0.5]; 12];
        let (assign, centroids) = lloyd_two_means(&points, 50, &mut rng);
        assert_eq!(assign.len(), 12);
        for c in &centroids {
            assert!((c[0] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn lloyd_two_points_split() {
        let mut rng = rng_from_seed(10);
        let points = vec![vec![0.0], vec![1.0]];
        let (assign, _) = lloyd_two_means(&points, 50, &mut rng);
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn subset_rate_rounding_to_zero_is_rejected() {
        // ξ·N rounds to zero reports per subset.
        let domain = Domain::new(4).unwrap();
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(11);
        let reports: Vec<Report> = (0..3).map(|i| proto.perturb(i, &mut rng)).collect();
        let defense = KMeansDefense::new(5, 0.01).unwrap();
        assert!(defense.run(&proto, &reports, &mut rng).is_err());
    }

    #[test]
    fn empty_reports_rejected() {
        let domain = Domain::new(4).unwrap();
        let proto = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let defense = KMeansDefense::default();
        let mut rng = rng_from_seed(3);
        assert!(defense.run(&proto, &[], &mut rng).is_err());
    }

    #[test]
    fn recover_km_produces_probability_vector() {
        let domain = Domain::new(12).unwrap();
        let proto = ProtocolKind::Oue.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(4);
        let mut reports: Vec<Report> = (0..3000).map(|i| proto.perturb(i % 12, &mut rng)).collect();
        for _ in 0..150 {
            reports.push(proto.perturb(7, &mut rng)); // IPA on item 7
        }
        let defense = KMeansDefense::new(10, 0.3).unwrap();
        let recover = LdpRecover::new(0.1).unwrap();
        let out = defense
            .recover_km(&recover, &proto, &reports, &mut rng)
            .unwrap();
        assert!(ldp_common::vecmath::is_probability_vector(
            &out.frequencies,
            1e-9
        ));
    }
}
