//! Step 1 — the genuine frequency estimator (paper §V-B).
//!
//! The analytical framework decomposes the poisoned frequency of each item
//! into a convex combination of genuine and malicious parts (Eq. 14):
//!
//! ```text
//! f̃_Z(v) = n/(n+m) · f̃_X(v) + m/(n+m) · f̃_Y(v)
//! ```
//!
//! Inverting with `η = m/n` gives the estimator of Eq. (19):
//!
//! ```text
//! f̃_X(v) = (1+η)·f̃_Z(v) − η·f̃_Y(v)
//! ```
//!
//! The module also exposes the CLT moments of Lemmas 1–2 and Theorem 1 so
//! the theory-validation suite can compare simulated frequency distributions
//! against their asymptotic normals.

use ldp_common::{LdpError, Result};
use ldp_protocols::PureParams;

/// Applies the genuine frequency estimator (Eq. 19) item-wise:
/// `(1+η)·poisoned − η·malicious`.
///
/// # Errors
/// [`LdpError::DomainMismatch`] when the vectors differ in length;
/// [`LdpError::InvalidParameter`] when `η` is negative or non-finite.
pub fn genuine_estimate(poisoned: &[f64], malicious: &[f64], eta: f64) -> Result<Vec<f64>> {
    check_eta(eta)?;
    if poisoned.len() != malicious.len() {
        return Err(LdpError::DomainMismatch {
            expected: poisoned.len(),
            got: malicious.len(),
            context: "genuine frequency estimator",
        });
    }
    Ok(poisoned
        .iter()
        .zip(malicious)
        .map(|(&z, &y)| (1.0 + eta) * z - eta * y)
        .collect())
}

/// Validates the assumed malicious/genuine ratio `η = m/n`.
///
/// # Errors
/// [`LdpError::InvalidParameter`] unless `η ≥ 0` and finite. (`η = 0`
/// degenerates to no recovery of malicious mass, which is legal: it is the
/// unpoisoned-data case of the paper's Table I.)
pub fn check_eta(eta: f64) -> Result<()> {
    if eta.is_finite() && eta >= 0.0 {
        Ok(())
    } else {
        Err(LdpError::invalid(format!(
            "eta must be finite and non-negative, got {eta}"
        )))
    }
}

/// Asymptotic moments of the genuine aggregated frequency `f̃_X(v)`
/// (Lemma 2): mean `f_X(v)` and variance
/// `q(1−q)/(n(p−q)²) + f_X(v)(1−p−q)/(n(p−q))`.
pub fn genuine_moments(params: PureParams, true_freq: f64, n: usize) -> (f64, f64) {
    let p = params.p();
    let q = params.q();
    let n = n as f64;
    let pq = p - q;
    let var = q * (1.0 - q) / (n * pq * pq) + true_freq * (1.0 - p - q) / (n * pq);
    (true_freq, var)
}

/// Asymptotic moments of the malicious aggregated frequency `f̃_Y(v)`
/// (Lemma 1) under the adaptive attack: each crafted report supports the
/// sampled item (probability `P(v)` for item `v`), so the per-report
/// estimate `Φ_{ε,y}(v) = (1_{S(y)}(v) − q)/(p − q)` is a shifted Bernoulli.
///
/// Returns `(μ_y, σ²_y)` with `μ_y = (P(v) − q)/(p − q)` and
/// `σ²_y = P(v)(1 − P(v))/(m(p − q)²)`.
pub fn malicious_moments(params: PureParams, attack_prob: f64, m: usize) -> (f64, f64) {
    let p = params.p();
    let q = params.q();
    let pq = p - q;
    let mu = (attack_prob - q) / pq;
    let var = attack_prob * (1.0 - attack_prob) / (m as f64 * pq * pq);
    (mu, var)
}

/// Third absolute central moment of the *single-report* malicious estimate
/// `Φ_{ε,y}(v)` — the `g_y` of Theorem 4. The estimate takes value
/// `(1−q)/(p−q)` with probability `P(v)` and `−q/(p−q)` otherwise.
pub fn malicious_report_third_moment(params: PureParams, attack_prob: f64) -> f64 {
    let p = params.p();
    let q = params.q();
    let pq = p - q;
    let hi = (1.0 - q) / pq;
    let lo = -q / pq;
    let mu = (attack_prob - q) / pq;
    attack_prob * (hi - mu).abs().powi(3) + (1.0 - attack_prob) * (lo - mu).abs().powi(3)
}

/// Asymptotic moments of the poisoned frequency `f̃_Z(v)` (Theorem 1):
///
/// ```text
/// μ_z = μ_x/(1+η) + η·μ_y/(1+η)
/// σ²_z = σ²_x/(1+η)² + η²·σ²_y/(1+η)²
/// ```
pub fn poisoned_moments(genuine: (f64, f64), malicious: (f64, f64), eta: f64) -> (f64, f64) {
    let (mu_x, var_x) = genuine;
    let (mu_y, var_y) = malicious;
    let s = 1.0 + eta;
    (
        mu_x / s + eta * mu_y / s,
        var_x / (s * s) + eta * eta * var_y / (s * s),
    )
}

/// Variance of the estimator output (Theorem 3): with the true `f̃_Y`
/// plugged in, the estimator's approximate variance equals the genuine
/// variance `σ²_x` of Lemma 2.
pub fn estimator_variance(params: PureParams, true_freq: f64, n: usize) -> f64 {
    genuine_moments(params, true_freq, n).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::Domain;

    fn params() -> PureParams {
        PureParams::new(0.5, 0.25, Domain::new(8).unwrap()).unwrap()
    }

    #[test]
    fn estimator_is_linear_inverse_of_mixture() {
        // If z = (x + η·y)/(1+η) exactly, the estimator returns x exactly.
        let eta = 0.25;
        let x = [0.4, 0.3, 0.2, 0.1];
        let y = [0.7, 0.1, 0.1, 0.1];
        let z: Vec<f64> = x
            .iter()
            .zip(&y)
            .map(|(&a, &b)| (a + eta * b) / (1.0 + eta))
            .collect();
        let est = genuine_estimate(&z, &y, eta).unwrap();
        for (e, &t) in est.iter().zip(&x) {
            assert!((e - t).abs() < 1e-12);
        }
    }

    #[test]
    fn estimator_validates_inputs() {
        assert!(genuine_estimate(&[0.1], &[0.1, 0.2], 0.2).is_err());
        assert!(genuine_estimate(&[0.1], &[0.1], -0.5).is_err());
        assert!(genuine_estimate(&[0.1], &[0.1], f64::NAN).is_err());
        assert!(genuine_estimate(&[0.1], &[0.1], 0.0).is_ok());
    }

    #[test]
    fn genuine_moments_match_lemma_two() {
        let pp = params();
        let (mu, var) = genuine_moments(pp, 0.3, 10_000);
        assert_eq!(mu, 0.3);
        let expect = 0.25 * 0.75 / (10_000.0 * 0.0625) + 0.3 * 0.25 / (10_000.0 * 0.25);
        assert!((var - expect).abs() < 1e-15);
        // Must also equal the generic frequency variance of PureParams.
        assert!((var - pp.variance_frequency(0.3, 10_000)).abs() < 1e-15);
    }

    #[test]
    fn malicious_moments_are_shifted_bernoulli() {
        let pp = params();
        let (mu, var) = malicious_moments(pp, 0.25, 100);
        // P(v) = q ⇒ zero mean.
        assert!(mu.abs() < 1e-15);
        assert!((var - 0.25 * 0.75 / (100.0 * 0.0625)).abs() < 1e-12);
        // Degenerate attack probabilities have zero variance.
        assert_eq!(malicious_moments(pp, 0.0, 10).1, 0.0);
        assert_eq!(malicious_moments(pp, 1.0, 10).1, 0.0);
    }

    #[test]
    fn third_moment_zero_for_degenerate_attack() {
        let pp = params();
        assert_eq!(malicious_report_third_moment(pp, 0.0), 0.0);
        assert_eq!(malicious_report_third_moment(pp, 1.0), 0.0);
        assert!(malicious_report_third_moment(pp, 0.5) > 0.0);
    }

    #[test]
    fn poisoned_moments_interpolate() {
        let g = (0.4, 1e-4);
        let m = (2.0, 9e-4);
        // η = 0: pure genuine.
        let (mu, var) = poisoned_moments(g, m, 0.0);
        assert_eq!((mu, var), g);
        // η = 1: equal mixture of means, quarter of each variance.
        let (mu, var) = poisoned_moments(g, m, 1.0);
        assert!((mu - 1.2).abs() < 1e-12);
        assert!((var - (1e-4 + 9e-4) / 4.0).abs() < 1e-15);
    }

    #[test]
    fn estimator_variance_equals_genuine_variance() {
        let pp = params();
        assert_eq!(
            estimator_variance(pp, 0.2, 5_000),
            genuine_moments(pp, 0.2, 5_000).1
        );
    }
}
