#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! **LDPRecover** — recovering frequencies from poisoning attacks against
//! local differential privacy (Sun et al., ICDE 2024).
//!
//! The server aggregates *poisoned* frequencies `f̃_Z` from a mixture of `n`
//! genuine and `m` malicious users. LDPRecover recovers the genuine
//! frequencies in three steps (paper §V):
//!
//! 1. **Estimator construction** ([`estimator`]) — the genuine frequency
//!    estimator `f̃_X(v) = (1+η)·f̃_Z(v) − η·f̃_Y(v)` (Eq. 19), with the
//!    CLT moments of Lemmas 1–2 / Theorem 1 available for analysis.
//! 2. **Malicious frequency learning** ([`malicious`]) — without attack
//!    knowledge, the *sum* of malicious aggregated frequencies is the
//!    protocol constant `(1 − q·d)/(p − q)` (Eq. 21), spread uniformly over
//!    the plausibly-poisoned sub-domain (Eq. 26); with partial knowledge of
//!    the target set the per-item model of Eq. (30) applies.
//! 3. **Genuine frequency recovery** ([`solve`], [`recover`]) — a
//!    constraint-inference least-squares problem solved by the iterative
//!    KKT scheme of Algorithm 1 (norm-sub).
//!
//! The crate also hosts the paper's baselines and extensions:
//! [`detection`] (report filtering on target signatures), [`kmeans`]
//! (subset clustering against input poisoning + LDPRecover-KM), [`outlier`]
//! (target identification for the partial-knowledge arm), and [`theory`]
//! (the Berry–Esseen approximation-error bounds of Theorems 4–5).
//!
//! All of these defenses are exposed through one open surface: the
//! [`arm`] module's object-safe [`DefenseArm`] trait and its string-keyed
//! [`ArmKind`]/[`ArmSet`] registry. Downstream evaluation layers (the
//! `ldp-sim` pipeline, the `ldp` CLI) select defenses by name
//! (`recover,detection,norm-sub`) and never hard-code one; adding a
//! defense is one trait impl plus a registry line (see the worked
//! example in the [`arm`] module docs).
//!
//! # Example
//!
//! ```
//! use ldp_common::Domain;
//! use ldp_protocols::PureParams;
//! use ldprecover::LdpRecover;
//!
//! // A 4-item domain where the server aggregated poisoned frequencies.
//! let domain = Domain::new(4).unwrap();
//! let params = PureParams::new(0.5, 1.0 / 6.0, domain).unwrap();
//! let poisoned = vec![0.55, 0.30, 0.18, -0.03];
//!
//! let recover = LdpRecover::new(0.2).unwrap();
//! let outcome = recover.recover(&poisoned, params).unwrap();
//! let f = &outcome.frequencies;
//! assert!(f.iter().all(|&x| x >= 0.0));
//! assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

pub mod arm;
pub mod detection;
pub mod estimator;
pub mod kmeans;
pub mod malicious;
pub mod outlier;
pub mod recover;
pub mod solve;
pub mod theory;

pub use arm::{ArmContext, ArmKind, ArmOutcome, ArmOutput, ArmRequirements, ArmSet, DefenseArm};
pub use detection::Detection;
pub use kmeans::{KMeansDefense, KMeansOutcome};
pub use malicious::MaliciousSumModel;
pub use outlier::{top_k_increase, MovingAverageDetector};
pub use recover::{Knowledge, LdpRecover, RecoveryOutcome};
pub use solve::PostProcess;
