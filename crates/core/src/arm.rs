//! The open defense-arm API: a first-class, object-safe trait for
//! recovery/defense methods, plus the string-keyed registry the simulation
//! and CLI layers drive.
//!
//! LDPRecover's evaluation is fundamentally a *comparison of defenses* —
//! LDPRecover, LDPRecover\*, report-filtering detection (Cao et al.),
//! k-means subset clustering (Du et al.), and plain normalization
//! baselines. Historically each of those was a hard-coded field threaded
//! by hand through every simulation layer; this module inverts the
//! dependency: a defense is **data** ([`ArmKind`] in the registry, a
//! [`DefenseArm`] implementation for the algorithm), and the pipeline
//! only ever sees the trait.
//!
//! * [`DefenseArm`] — the object-safe trait: `name`, [`ArmRequirements`]
//!   (does the arm consume raw reports? identified targets? randomness?),
//!   and `run` over an [`ArmContext`].
//! * [`ArmContext`] — everything the server side has at recovery time:
//!   the poisoned frequency estimate, protocol parameters, optionally the
//!   retained per-user reports, the protocol instance, and an identified
//!   target set.
//! * [`ArmOutcome`] / [`ArmOutput`] — named recovered-frequency outputs
//!   with an optional malicious-estimate side channel, or a *documented
//!   statistical degeneracy* ([`ArmOutcome::Degenerate`]) that callers
//!   skip without failing the trial. Real errors (shape mismatches, bad
//!   configuration) stay `Err` and propagate.
//! * [`ArmKind`] / [`ArmSet`] — the string-keyed registry
//!   (`ArmKind::parse`, `ArmSet::parse`) behind `ldp --arms
//!   recover,detection,norm-sub` and the scenario catalog's arm grids.
//!
//! # Adding your own arm
//!
//! A new defense is one trait impl plus a registry line — no simulation
//! internals involved:
//!
//! ```
//! use ldp_common::{Domain, Result};
//! use ldp_protocols::PureParams;
//! use ldprecover::arm::{ArmContext, ArmOutcome, ArmOutput, ArmRequirements, DefenseArm};
//! use rand::RngCore;
//!
//! /// A toy defense: trust the poisoned estimate, clip + renormalize.
//! struct ClipArm;
//!
//! impl DefenseArm for ClipArm {
//!     fn name(&self) -> &str {
//!         "clip"
//!     }
//!     fn requirements(&self) -> ArmRequirements {
//!         ArmRequirements::default() // frequencies only: no reports/targets/rng
//!     }
//!     fn run(&self, ctx: &ArmContext<'_>, _rng: &mut dyn RngCore) -> Result<ArmOutcome> {
//!         let frequencies = ldprecover::solve::clip_normalize(ctx.poisoned);
//!         Ok(ArmOutcome::single("clip", ArmOutput::frequencies_only(frequencies)))
//!     }
//! }
//!
//! let domain = Domain::new(4).unwrap();
//! let params = PureParams::new(0.5, 1.0 / 6.0, domain).unwrap();
//! let poisoned = vec![0.55, 0.30, 0.18, -0.03];
//! let ctx = ArmContext::new(&poisoned, params, 0.2);
//! let mut rng = ldp_common::rng::rng_from_seed(1);
//! match ClipArm.run(&ctx, &mut rng).unwrap() {
//!     ArmOutcome::Outputs(outputs) => {
//!         assert_eq!(outputs[0].0, "clip");
//!         assert!((outputs[0].1.frequencies.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//!     }
//!     ArmOutcome::Degenerate { .. } => unreachable!("clip never degenerates"),
//! }
//! ```
//!
//! To make it selectable end to end, add an `ArmKind` variant with a name
//! and metric key, and a line in [`ArmSet::build`].

use ldp_common::{LdpError, Result};
use ldp_protocols::{AnyProtocol, PureParams, Report};
use rand::RngCore;

use crate::kmeans::KMeansDefense;
use crate::malicious::MaliciousSumModel;
use crate::recover::LdpRecover;
use crate::solve::PostProcess;

/// What an arm consumes beyond the poisoned frequency estimate.
///
/// The scheduler uses these flags *before* running anything: arms that
/// need raw reports force per-user aggregation (and are ineligible in
/// count-only settings like the streaming engine), arms that need targets
/// trigger the target-identification step, and arms that need randomness
/// are the only ones allowed to advance the trial RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArmRequirements {
    /// The arm consumes the retained per-user [`Report`]s (e.g. report
    /// filtering, subset clustering). Incompatible with batched/count-only
    /// aggregation, which never materializes reports.
    pub needs_reports: bool,
    /// The arm consumes an identified target set (the partial-knowledge
    /// scenario of paper §V-D).
    pub needs_targets: bool,
    /// The arm draws from the trial RNG (e.g. subset sampling).
    pub needs_rng: bool,
}

/// Everything the server side has at recovery time — the input of every
/// [`DefenseArm::run`].
///
/// Only `poisoned`, `params`, and `eta` always exist; the rest depends on
/// the aggregation mode (reports), the attack (targets), and the caller.
/// Arms must check their own [`ArmRequirements`] against what is present
/// and return a clear error when a hard requirement is missing.
#[derive(Debug, Clone, Copy)]
pub struct ArmContext<'a> {
    /// The poisoned aggregated frequency estimate `f̃_Z` (debiased).
    pub poisoned: &'a [f64],
    /// The protocol's pure-parameter view (`p`, `q`, domain).
    pub params: PureParams,
    /// The full protocol instance, when the caller has one (needed by
    /// report-consuming arms, which must re-interpret encodings).
    pub protocol: Option<&'a AnyProtocol>,
    /// Retained per-user reports (genuine then malicious), when the
    /// aggregation path kept them.
    pub reports: Option<&'a [Report]>,
    /// The identified target set for partial-knowledge arms (oracle
    /// targets for targeted attacks, top-k-increase identification
    /// otherwise).
    pub targets: Option<&'a [usize]>,
    /// The recovery methods' assumed malicious/genuine ratio `η = m/n`.
    pub eta: f64,
    /// Malicious-sum model for learning-based arms (paper Eq. 21 default).
    pub sum_model: MaliciousSumModel,
    /// Refinement step for learning-based arms (norm-sub default).
    pub post_process: PostProcess,
}

impl<'a> ArmContext<'a> {
    /// A minimal context: poisoned estimate, parameters, and `η`. Other
    /// inputs default to absent / the paper's defaults.
    pub fn new(poisoned: &'a [f64], params: PureParams, eta: f64) -> Self {
        Self {
            poisoned,
            params,
            protocol: None,
            reports: None,
            targets: None,
            eta,
            sum_model: MaliciousSumModel::default(),
            post_process: PostProcess::default(),
        }
    }

    /// Attaches the protocol instance.
    pub fn with_protocol(mut self, protocol: &'a AnyProtocol) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Attaches retained per-user reports.
    pub fn with_reports(mut self, reports: &'a [Report]) -> Self {
        self.reports = Some(reports);
        self
    }

    /// Attaches an identified target set.
    pub fn with_targets(mut self, targets: &'a [usize]) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Overrides the malicious-sum model.
    pub fn with_sum_model(mut self, model: MaliciousSumModel) -> Self {
        self.sum_model = model;
        self
    }

    /// Overrides the refinement step.
    pub fn with_post_process(mut self, post: PostProcess) -> Self {
        self.post_process = post;
        self
    }

    /// The [`LdpRecover`] instance this context configures (the shared
    /// front end of every estimator-based arm).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for an invalid `η`.
    pub fn recoverer(&self) -> Result<LdpRecover> {
        Ok(LdpRecover::new(self.eta)?
            .with_sum_model(self.sum_model)
            .with_post_process(self.post_process))
    }
}

/// One named frequency estimate an arm produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmOutput {
    /// The arm's recovered/defended frequency estimate.
    pub frequencies: Vec<f64>,
    /// The malicious frequency estimate `f̃′_Y` the arm learned, when it
    /// learns one that is comparable to the true aggregated `f̃_Y`
    /// (the Fig. 7 side channel). Arms whose internal malicious direction
    /// is a heuristic rather than an estimate leave this `None`.
    pub malicious_estimate: Option<Vec<f64>>,
    /// Whether frequency gain (paper Eq. 37) is a meaningful statistic
    /// for this arm's output — the metric layer derives `fg_{key}` only
    /// when set.
    pub track_fg: bool,
}

impl ArmOutput {
    /// An output that is just a frequency vector (no malicious side
    /// channel), with FG tracking on.
    pub fn frequencies_only(frequencies: Vec<f64>) -> Self {
        Self {
            frequencies,
            malicious_estimate: None,
            track_fg: true,
        }
    }
}

/// What one [`DefenseArm::run`] yields.
///
/// Arms usually emit a single output keyed by their metric key; families
/// that share one expensive pass (the k-means defenses, where one
/// clustering serves both the plain estimate and LDPRecover-KM) emit
/// several. The keys become metric names downstream: `mse_{key}`,
/// `fg_{key}`, `malicious_mse_{key}`.
#[derive(Debug, Clone, PartialEq)]
pub enum ArmOutcome {
    /// Named outputs, in presentation order.
    Outputs(Vec<(String, ArmOutput)>),
    /// A *documented* statistical degeneracy (e.g. the detection baseline
    /// flagged every report, or no target set could be identified): the
    /// arm is skipped this trial, the trial itself succeeds. Anything
    /// that is not one of these known small-sample cases must be an
    /// `Err`, never a `Degenerate`.
    Degenerate {
        /// Human-readable description of the degeneracy.
        reason: String,
    },
}

impl ArmOutcome {
    /// A single-output outcome under `key`.
    pub fn single(key: impl Into<String>, output: ArmOutput) -> Self {
        ArmOutcome::Outputs(vec![(key.into(), output)])
    }

    /// A degenerate outcome with the given reason.
    pub fn degenerate(reason: impl Into<String>) -> Self {
        ArmOutcome::Degenerate {
            reason: reason.into(),
        }
    }
}

/// A recovery/defense method, as the evaluation pipeline sees it.
///
/// Object-safe by construction (`&mut dyn RngCore`): the pipeline holds
/// `Box<dyn DefenseArm>` and never matches on concrete types. See the
/// [module docs](self) for a worked "add your own arm" example.
pub trait DefenseArm: Send + Sync {
    /// The registry/CLI name (e.g. `"recover-star"`).
    fn name(&self) -> &str;

    /// What this arm consumes beyond the poisoned estimate.
    fn requirements(&self) -> ArmRequirements;

    /// Runs the defense on one trial's context.
    ///
    /// # Errors
    /// Real failures only (shape mismatches, missing hard requirements,
    /// numerical breakdown); documented small-sample degeneracies return
    /// `Ok(ArmOutcome::Degenerate { .. })` instead.
    fn run(&self, ctx: &ArmContext<'_>, rng: &mut dyn RngCore) -> Result<ArmOutcome>;
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// The string-keyed registry of shipped defense arms.
///
/// | kind | name (CLI) | metric key | knowledge assumed | reports? |
/// |------|------------|------------|-------------------|----------|
/// | [`Recover`](ArmKind::Recover) | `recover` | `recover` | none | no |
/// | [`RecoverStar`](ArmKind::RecoverStar) | `recover-star` | `star` | target set | no |
/// | [`Detection`](ArmKind::Detection) | `detection` | `detection` | target set | yes |
/// | [`Kmeans`](ArmKind::Kmeans) | `kmeans` | `kmeans` | none | yes |
/// | [`RecoverKm`](ArmKind::RecoverKm) | `recover-km` | `recover_km` | none | yes |
/// | [`NormSub`](ArmKind::NormSub) | `norm-sub` | `norm_sub` | none | no |
/// | [`BaseCut`](ArmKind::BaseCut) | `base-cut` | `base_cut` | none | no |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmKind {
    /// LDPRecover proper (paper Algorithm 1, no attack knowledge).
    Recover,
    /// LDPRecover\* (partial knowledge: identified target set).
    RecoverStar,
    /// The report-filtering detection baseline (Cao et al.).
    Detection,
    /// The k-means subset-clustering defense (Du et al., Fig. 9).
    Kmeans,
    /// LDPRecover-KM: recovery on the k-means cluster structure (§VII-B).
    RecoverKm,
    /// Standalone norm-sub normalization of the poisoned estimate (the
    /// Algorithm-1 refinement run as a defense of its own — the "just
    /// project back to the simplex" baseline).
    NormSub,
    /// Standalone Base-Cut normalization (Wang et al., NDSS 2020): zero
    /// sub-uniform estimates, renormalize.
    BaseCut,
}

impl ArmKind {
    /// Every registered arm, in canonical execution/presentation order.
    pub const ALL: [ArmKind; 7] = [
        ArmKind::Recover,
        ArmKind::RecoverStar,
        ArmKind::Detection,
        ArmKind::Kmeans,
        ArmKind::RecoverKm,
        ArmKind::NormSub,
        ArmKind::BaseCut,
    ];

    /// The registry/CLI name.
    pub const fn name(self) -> &'static str {
        match self {
            ArmKind::Recover => "recover",
            ArmKind::RecoverStar => "recover-star",
            ArmKind::Detection => "detection",
            ArmKind::Kmeans => "kmeans",
            ArmKind::RecoverKm => "recover-km",
            ArmKind::NormSub => "norm-sub",
            ArmKind::BaseCut => "base-cut",
        }
    }

    /// The snake_case key metric names derive from (`mse_{key}`, …).
    /// Chosen so the historical metric names are reproduced exactly
    /// (`star` → `mse_star`, `recover_km` → `mse_recover_km`).
    pub const fn metric_key(self) -> &'static str {
        match self {
            ArmKind::Recover => "recover",
            ArmKind::RecoverStar => "star",
            ArmKind::Detection => "detection",
            ArmKind::Kmeans => "kmeans",
            ArmKind::RecoverKm => "recover_km",
            ArmKind::NormSub => "norm_sub",
            ArmKind::BaseCut => "base_cut",
        }
    }

    /// Human-readable label (the paper's method names, for table headers).
    pub const fn label(self) -> &'static str {
        match self {
            ArmKind::Recover => "LDPRecover",
            ArmKind::RecoverStar => "LDPRecover*",
            ArmKind::Detection => "Detection",
            ArmKind::Kmeans => "k-means",
            ArmKind::RecoverKm => "LDPRecover-KM",
            ArmKind::NormSub => "norm-sub",
            ArmKind::BaseCut => "base-cut",
        }
    }

    /// The arm's static requirements (what [`DefenseArm::requirements`]
    /// reports for the shipped implementation).
    pub const fn requirements(self) -> ArmRequirements {
        match self {
            ArmKind::Recover | ArmKind::NormSub | ArmKind::BaseCut => ArmRequirements {
                needs_reports: false,
                needs_targets: false,
                needs_rng: false,
            },
            ArmKind::RecoverStar => ArmRequirements {
                needs_reports: false,
                needs_targets: true,
                needs_rng: false,
            },
            ArmKind::Detection => ArmRequirements {
                needs_reports: true,
                needs_targets: true,
                needs_rng: false,
            },
            ArmKind::Kmeans | ArmKind::RecoverKm => ArmRequirements {
                needs_reports: true,
                needs_targets: false,
                needs_rng: true,
            },
        }
    }

    /// Parses a registry name (case-insensitive; `_` and `-` are
    /// interchangeable, and the historical metric keys are accepted as
    /// aliases, e.g. `star`).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown names; the message lists
    /// every valid arm.
    pub fn parse(s: &str) -> Result<Self> {
        let canon = s.trim().to_ascii_lowercase().replace('_', "-");
        for kind in ArmKind::ALL {
            if canon == kind.name() || canon == kind.metric_key().replace('_', "-") {
                return Ok(kind);
            }
        }
        Err(LdpError::invalid(format!(
            "unknown defense arm '{s}' (valid arms: {})",
            ArmKind::ALL.map(ArmKind::name).join(", ")
        )))
    }
}

impl std::fmt::Display for ArmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered, de-duplicated selection of registry arms.
///
/// Construction canonicalizes to [`ArmKind::ALL`] order, so execution
/// order — and therefore RNG draw order — never depends on how the set
/// was written down (`--arms detection,recover` ≡ `--arms
/// recover,detection`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArmSet {
    kinds: Vec<ArmKind>,
}

impl Default for ArmSet {
    /// Just LDPRecover — the arm every historical pipeline run included.
    fn default() -> Self {
        ArmSet::new([ArmKind::Recover])
    }
}

impl ArmSet {
    /// Builds a set from any iterator of kinds (duplicates collapse, order
    /// canonicalizes).
    pub fn new(kinds: impl IntoIterator<Item = ArmKind>) -> Self {
        let requested: Vec<ArmKind> = kinds.into_iter().collect();
        let kinds = ArmKind::ALL
            .into_iter()
            .filter(|k| requested.contains(k))
            .collect();
        Self { kinds }
    }

    /// The empty set (no arms run — aggregation-only trials).
    pub fn empty() -> Self {
        Self { kinds: Vec::new() }
    }

    /// Parses a comma-separated arm list (e.g. `"recover,detection,norm-sub"`).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for an empty list or any unknown
    /// name (see [`ArmKind::parse`]).
    pub fn parse(s: &str) -> Result<Self> {
        let names: Vec<&str> = s
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        if names.is_empty() {
            return Err(LdpError::invalid(format!(
                "empty arm list (valid arms: {})",
                ArmKind::ALL.map(ArmKind::name).join(", ")
            )));
        }
        Ok(ArmSet::new(
            names
                .into_iter()
                .map(ArmKind::parse)
                .collect::<Result<Vec<_>>>()?,
        ))
    }

    /// The selected kinds, in canonical order.
    pub fn kinds(&self) -> &[ArmKind] {
        &self.kinds
    }

    /// Whether the set contains a kind.
    pub fn contains(&self, kind: ArmKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// Whether no arm is selected.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether any selected arm consumes raw reports (forces per-user
    /// aggregation).
    pub fn needs_reports(&self) -> bool {
        self.kinds.iter().any(|k| k.requirements().needs_reports)
    }

    /// Whether any selected arm consumes an identified target set
    /// (triggers the identification step).
    pub fn needs_targets(&self) -> bool {
        self.kinds.iter().any(|k| k.requirements().needs_targets)
    }

    /// Whether any selected arm draws from the trial RNG.
    pub fn needs_rng(&self) -> bool {
        self.kinds.iter().any(|k| k.requirements().needs_rng)
    }

    /// Instantiates the executable arms, in canonical order.
    ///
    /// The two k-means kinds fuse into one [`DefenseArm`] so a set
    /// containing both pays for (and draws RNG for) exactly one
    /// clustering pass — the historical behaviour of the closed pipeline,
    /// which the differential goldens pin bit-for-bit.
    pub fn build(&self, kmeans: &KMeansDefense) -> Vec<Box<dyn DefenseArm>> {
        let mut arms: Vec<Box<dyn DefenseArm>> = Vec::new();
        let mut kmeans_done = false;
        for &kind in &self.kinds {
            match kind {
                ArmKind::Recover => arms.push(Box::new(RecoverArm)),
                ArmKind::RecoverStar => arms.push(Box::new(RecoverStarArm)),
                ArmKind::Detection => arms.push(Box::new(DetectionArm)),
                ArmKind::Kmeans | ArmKind::RecoverKm => {
                    if !kmeans_done {
                        kmeans_done = true;
                        arms.push(Box::new(KMeansFamilyArm {
                            defense: *kmeans,
                            emit_kmeans: self.contains(ArmKind::Kmeans),
                            emit_recover_km: self.contains(ArmKind::RecoverKm),
                        }));
                    }
                }
                ArmKind::NormSub => arms.push(Box::new(NormSubArm)),
                ArmKind::BaseCut => arms.push(Box::new(BaseCutArm)),
            }
        }
        arms
    }
}

impl std::fmt::Display for ArmSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.kinds.iter().map(|k| k.name()).collect();
        f.write_str(&names.join(","))
    }
}

// ---------------------------------------------------------------------------
// The shipped arm implementations.
// ---------------------------------------------------------------------------

/// LDPRecover proper: no attack knowledge (paper Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverArm;

impl DefenseArm for RecoverArm {
    fn name(&self) -> &str {
        ArmKind::Recover.name()
    }

    fn requirements(&self) -> ArmRequirements {
        ArmKind::Recover.requirements()
    }

    fn run(&self, ctx: &ArmContext<'_>, _rng: &mut dyn RngCore) -> Result<ArmOutcome> {
        let outcome = ctx.recoverer()?.recover(ctx.poisoned, ctx.params)?;
        Ok(ArmOutcome::single(
            ArmKind::Recover.metric_key(),
            ArmOutput {
                frequencies: outcome.frequencies,
                malicious_estimate: Some(outcome.malicious_estimate),
                track_fg: true,
            },
        ))
    }
}

/// LDPRecover\*: the partial-knowledge scenario over the context's
/// identified target set. Degenerates (rather than failing) when no target
/// set exists — e.g. an unpoisoned trial, where there is nothing to know.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverStarArm;

impl DefenseArm for RecoverStarArm {
    fn name(&self) -> &str {
        ArmKind::RecoverStar.name()
    }

    fn requirements(&self) -> ArmRequirements {
        ArmKind::RecoverStar.requirements()
    }

    fn run(&self, ctx: &ArmContext<'_>, _rng: &mut dyn RngCore) -> Result<ArmOutcome> {
        let Some(targets) = ctx.targets else {
            return Ok(ArmOutcome::degenerate(
                "no identified target set (unpoisoned trial or identification unavailable)",
            ));
        };
        let outcome = ctx
            .recoverer()?
            .recover_with_targets(ctx.poisoned, ctx.params, targets)?;
        Ok(ArmOutcome::single(
            ArmKind::RecoverStar.metric_key(),
            ArmOutput {
                frequencies: outcome.frequencies,
                malicious_estimate: Some(outcome.malicious_estimate),
                track_fg: true,
            },
        ))
    }
}

/// The report-filtering detection baseline: remove reports whose target
/// support is implausible for a genuine user, re-estimate from survivors.
///
/// Degenerates only on the two documented small-sample cases (no target
/// set identified; every report flagged); every other failure — shape
/// mismatch, invalid target set — is a real error and propagates.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectionArm;

impl DefenseArm for DetectionArm {
    fn name(&self) -> &str {
        ArmKind::Detection.name()
    }

    fn requirements(&self) -> ArmRequirements {
        ArmKind::Detection.requirements()
    }

    fn run(&self, ctx: &ArmContext<'_>, _rng: &mut dyn RngCore) -> Result<ArmOutcome> {
        let Some(targets) = ctx.targets else {
            return Ok(ArmOutcome::degenerate(
                "no identified target set (unpoisoned trial or identification unavailable)",
            ));
        };
        let protocol = ctx.protocol.ok_or_else(|| {
            LdpError::invalid("the detection arm needs the protocol instance in its context")
        })?;
        let reports = ctx.reports.ok_or_else(|| {
            LdpError::invalid(
                "the detection arm consumes raw reports; aggregate per-user (or Auto)",
            )
        })?;
        let detection = crate::detection::Detection::new(targets.to_vec())?;
        let mask = detection.keep_mask(protocol, reports);
        if !mask.iter().any(|&keep| keep) {
            return Ok(ArmOutcome::degenerate(
                "every report was flagged as malicious (small-sample degeneracy)",
            ));
        }
        let frequencies =
            crate::detection::Detection::estimate_from_mask(protocol, reports, &mask)?;
        Ok(ArmOutcome::single(
            ArmKind::Detection.metric_key(),
            ArmOutput::frequencies_only(frequencies),
        ))
    }
}

/// The k-means family: subset clustering (Du et al.) and its LDPRecover
/// integration, fused so one clustering pass serves both outputs.
///
/// The internal malicious *direction* (the centroid difference) is a
/// normalized heuristic, not an estimate of the true aggregated `f̃_Y`,
/// so neither output exposes a malicious-estimate side channel; and FG is
/// not tracked — these are the paper's input-poisoning (Fig. 9) arms,
/// evaluated on MSE.
#[derive(Debug, Clone, Copy)]
pub struct KMeansFamilyArm {
    /// Clustering configuration (subset count, sample rate).
    pub defense: KMeansDefense,
    /// Emit the plain k-means estimate (metric key `kmeans`).
    pub emit_kmeans: bool,
    /// Emit LDPRecover-KM (metric key `recover_km`).
    pub emit_recover_km: bool,
}

impl DefenseArm for KMeansFamilyArm {
    fn name(&self) -> &str {
        if self.emit_kmeans {
            ArmKind::Kmeans.name()
        } else {
            ArmKind::RecoverKm.name()
        }
    }

    fn requirements(&self) -> ArmRequirements {
        ArmKind::Kmeans.requirements()
    }

    fn run(&self, ctx: &ArmContext<'_>, rng: &mut dyn RngCore) -> Result<ArmOutcome> {
        let protocol = ctx.protocol.ok_or_else(|| {
            LdpError::invalid("the k-means arms need the protocol instance in their context")
        })?;
        let reports = ctx.reports.ok_or_else(|| {
            LdpError::invalid("the k-means arms consume raw reports; aggregate per-user (or Auto)")
        })?;
        let outcome = self.defense.run(protocol, reports, rng)?;
        let recover_km = if self.emit_recover_km {
            let recovered = KMeansDefense::recover_from_outcome(
                &ctx.recoverer()?,
                protocol,
                reports,
                &outcome,
            )?;
            Some(recovered.frequencies)
        } else {
            None
        };
        let mut outputs = Vec::new();
        if self.emit_kmeans {
            outputs.push((
                ArmKind::Kmeans.metric_key().to_string(),
                ArmOutput {
                    frequencies: outcome.genuine_estimate,
                    malicious_estimate: None,
                    track_fg: false,
                },
            ));
        }
        if let Some(frequencies) = recover_km {
            outputs.push((
                ArmKind::RecoverKm.metric_key().to_string(),
                ArmOutput {
                    frequencies,
                    malicious_estimate: None,
                    track_fg: false,
                },
            ));
        }
        Ok(ArmOutcome::Outputs(outputs))
    }
}

/// Standalone norm-sub: Algorithm 1's refinement applied directly to the
/// poisoned estimate, with no malicious-frequency learning at all — the
/// "just project back to the simplex" baseline latent in
/// [`crate::solve::norm_sub`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NormSubArm;

impl DefenseArm for NormSubArm {
    fn name(&self) -> &str {
        ArmKind::NormSub.name()
    }

    fn requirements(&self) -> ArmRequirements {
        ArmKind::NormSub.requirements()
    }

    fn run(&self, ctx: &ArmContext<'_>, _rng: &mut dyn RngCore) -> Result<ArmOutcome> {
        Ok(ArmOutcome::single(
            ArmKind::NormSub.metric_key(),
            ArmOutput::frequencies_only(PostProcess::NormSub.apply(ctx.poisoned)?),
        ))
    }
}

/// Standalone Base-Cut (Wang et al., NDSS 2020): zero every estimate below
/// the uniform level `1/d`, renormalize — the sparsity-inducing baseline
/// latent in [`crate::solve::base_cut`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BaseCutArm;

impl DefenseArm for BaseCutArm {
    fn name(&self) -> &str {
        ArmKind::BaseCut.name()
    }

    fn requirements(&self) -> ArmRequirements {
        ArmKind::BaseCut.requirements()
    }

    fn run(&self, ctx: &ArmContext<'_>, _rng: &mut dyn RngCore) -> Result<ArmOutcome> {
        Ok(ArmOutcome::single(
            ArmKind::BaseCut.metric_key(),
            ArmOutput::frequencies_only(PostProcess::BaseCut.apply(ctx.poisoned)?),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;
    use ldp_common::vecmath::is_probability_vector;
    use ldp_common::Domain;
    use ldp_protocols::{CountAccumulator, LdpFrequencyProtocol, ProtocolKind};

    fn grr_params(d: usize, eps: f64) -> PureParams {
        let e = eps.exp();
        let denom = d as f64 - 1.0 + e;
        PureParams::new(e / denom, 1.0 / denom, Domain::new(d).unwrap()).unwrap()
    }

    fn outputs(outcome: ArmOutcome) -> Vec<(String, ArmOutput)> {
        match outcome {
            ArmOutcome::Outputs(outputs) => outputs,
            ArmOutcome::Degenerate { reason } => panic!("unexpected degeneracy: {reason}"),
        }
    }

    #[test]
    fn registry_names_and_keys_are_unique_and_parse_round_trips() {
        let mut names = std::collections::HashSet::new();
        let mut keys = std::collections::HashSet::new();
        for kind in ArmKind::ALL {
            assert!(names.insert(kind.name()), "duplicate name {kind}");
            assert!(keys.insert(kind.metric_key()), "duplicate key {kind}");
            assert_eq!(ArmKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(ArmKind::parse(kind.metric_key()).unwrap(), kind, "alias");
            assert_eq!(
                ArmKind::parse(&kind.name().to_ascii_uppercase()).unwrap(),
                kind
            );
        }
    }

    #[test]
    fn parse_rejects_unknown_arms_listing_the_registry() {
        let err = ArmKind::parse("frobnicate").unwrap_err().to_string();
        for kind in ArmKind::ALL {
            assert!(err.contains(kind.name()), "error must list {kind}: {err}");
        }
        assert!(ArmSet::parse("").is_err());
        assert!(ArmSet::parse("recover,nope").is_err());
    }

    #[test]
    fn arm_set_canonicalizes_order_and_dedups() {
        let set = ArmSet::parse("detection, recover, detection,recover-star").unwrap();
        assert_eq!(
            set.kinds(),
            &[ArmKind::Recover, ArmKind::RecoverStar, ArmKind::Detection]
        );
        assert_eq!(set.to_string(), "recover,recover-star,detection");
        assert_eq!(
            set,
            ArmSet::parse("recover-star,detection,recover").unwrap()
        );
        assert!(ArmSet::empty().is_empty());
        assert_eq!(ArmSet::default().kinds(), &[ArmKind::Recover]);
    }

    #[test]
    fn requirement_rollups() {
        let set = ArmSet::new([ArmKind::Recover, ArmKind::NormSub]);
        assert!(!set.needs_reports() && !set.needs_targets() && !set.needs_rng());
        let set = ArmSet::new([ArmKind::Recover, ArmKind::RecoverStar]);
        assert!(set.needs_targets() && !set.needs_reports());
        let set = ArmSet::new([ArmKind::Detection]);
        assert!(set.needs_reports() && set.needs_targets());
        let set = ArmSet::new([ArmKind::RecoverKm]);
        assert!(set.needs_reports() && set.needs_rng());
    }

    #[test]
    fn kmeans_kinds_fuse_into_one_executable() {
        let both = ArmSet::new([ArmKind::Recover, ArmKind::Kmeans, ArmKind::RecoverKm]);
        let arms = both.build(&KMeansDefense::default());
        assert_eq!(arms.len(), 2, "recover + one fused k-means family");
        let only_km = ArmSet::new([ArmKind::RecoverKm]).build(&KMeansDefense::default());
        assert_eq!(only_km.len(), 1);
        assert_eq!(only_km[0].name(), "recover-km");
    }

    #[test]
    fn recover_arm_matches_direct_ldprecover() {
        let params = grr_params(6, 0.5);
        let poisoned = vec![0.4, 0.25, 0.2, 0.1, 0.05, -0.02];
        let ctx = ArmContext::new(&poisoned, params, 0.2);
        let mut rng = rng_from_seed(1);
        let outs = outputs(RecoverArm.run(&ctx, &mut rng).unwrap());
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "recover");
        let direct = LdpRecover::new(0.2)
            .unwrap()
            .recover(&poisoned, params)
            .unwrap();
        assert_eq!(outs[0].1.frequencies, direct.frequencies);
        assert_eq!(
            outs[0].1.malicious_estimate.as_deref(),
            Some(direct.malicious_estimate.as_slice())
        );
        assert!(outs[0].1.track_fg);
    }

    #[test]
    fn star_arm_degenerates_without_targets_and_matches_with() {
        let params = grr_params(10, 0.5);
        let poisoned = vec![0.08; 10];
        let mut rng = rng_from_seed(2);
        let ctx = ArmContext::new(&poisoned, params, 0.2);
        assert!(matches!(
            RecoverStarArm.run(&ctx, &mut rng).unwrap(),
            ArmOutcome::Degenerate { .. }
        ));
        let targets = [1usize, 4];
        let ctx = ctx.with_targets(&targets);
        let outs = outputs(RecoverStarArm.run(&ctx, &mut rng).unwrap());
        let direct = LdpRecover::new(0.2)
            .unwrap()
            .with_targets(targets.to_vec())
            .recover(&poisoned, params)
            .unwrap();
        assert_eq!(outs[0].0, "star");
        assert_eq!(outs[0].1.frequencies, direct.frequencies);
    }

    #[test]
    fn detection_arm_distinguishes_degenerate_from_error() {
        let domain = Domain::new(4).unwrap();
        let protocol = ProtocolKind::Grr.build(0.5, domain).unwrap();
        let poisoned = vec![0.25; 4];
        let mut rng = rng_from_seed(3);
        // Every report names a target → documented degeneracy, not an error.
        let reports = vec![Report::Grr(0), Report::Grr(3)];
        let targets = [0usize, 1, 2, 3];
        let ctx = ArmContext::new(&poisoned, protocol.params(), 0.2)
            .with_protocol(&protocol)
            .with_reports(&reports)
            .with_targets(&targets);
        assert!(matches!(
            DetectionArm.run(&ctx, &mut rng).unwrap(),
            ArmOutcome::Degenerate { .. }
        ));
        // Missing reports with targets present → a real error.
        let ctx = ArmContext::new(&poisoned, protocol.params(), 0.2)
            .with_protocol(&protocol)
            .with_targets(&targets);
        assert!(DetectionArm.run(&ctx, &mut rng).is_err());
        // Survivors exist → a real estimate, identical to Detection::recover.
        let targets = [0usize];
        let reports = vec![Report::Grr(0), Report::Grr(3), Report::Grr(2)];
        let ctx = ArmContext::new(&poisoned, protocol.params(), 0.2)
            .with_protocol(&protocol)
            .with_reports(&reports)
            .with_targets(&targets);
        let outs = outputs(DetectionArm.run(&ctx, &mut rng).unwrap());
        let direct = crate::detection::Detection::new(targets.to_vec())
            .unwrap()
            .recover(&protocol, &reports)
            .unwrap();
        assert_eq!(outs[0].1.frequencies, direct);
        assert!(outs[0].1.malicious_estimate.is_none());
    }

    #[test]
    fn kmeans_family_emits_requested_outputs_from_one_pass() {
        let domain = Domain::new(12).unwrap();
        let protocol = ProtocolKind::Oue.build(0.5, domain).unwrap();
        let mut rng = rng_from_seed(4);
        let mut reports: Vec<Report> = (0..2000)
            .map(|i| protocol.perturb(i % 12, &mut rng))
            .collect();
        for _ in 0..100 {
            reports.push(protocol.perturb(7, &mut rng));
        }
        let poisoned = {
            let mut acc = CountAccumulator::new(domain);
            acc.add_all(&protocol, &reports);
            acc.frequencies(protocol.params()).unwrap()
        };
        let ctx = ArmContext::new(&poisoned, protocol.params(), 0.1)
            .with_protocol(&protocol)
            .with_reports(&reports);
        let arm = KMeansFamilyArm {
            defense: KMeansDefense::new(10, 0.3).unwrap(),
            emit_kmeans: true,
            emit_recover_km: true,
        };
        let mut rng_a = rng_from_seed(5);
        let outs = outputs(arm.run(&ctx, &mut rng_a).unwrap());
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].0, "kmeans");
        assert_eq!(outs[1].0, "recover_km");
        assert!(is_probability_vector(&outs[1].1.frequencies, 1e-9));
        assert!(!outs[0].1.track_fg && !outs[1].1.track_fg);
        // Same seed, kmeans-only: identical clustering, identical estimate.
        let solo = KMeansFamilyArm {
            emit_recover_km: false,
            ..arm
        };
        let mut rng_b = rng_from_seed(5);
        let solo_outs = outputs(solo.run(&ctx, &mut rng_b).unwrap());
        assert_eq!(solo_outs.len(), 1);
        assert_eq!(solo_outs[0].1.frequencies, outs[0].1.frequencies);
    }

    #[test]
    fn normalization_arms_match_their_solvers() {
        let params = grr_params(5, 0.5);
        let poisoned = vec![0.6, -0.2, 0.5, 0.3, -0.05];
        let ctx = ArmContext::new(&poisoned, params, 0.2);
        let mut rng = rng_from_seed(6);
        let ns = outputs(NormSubArm.run(&ctx, &mut rng).unwrap());
        assert_eq!(ns[0].0, "norm_sub");
        assert_eq!(ns[0].1.frequencies, crate::solve::norm_sub(&poisoned));
        let bc = outputs(BaseCutArm.run(&ctx, &mut rng).unwrap());
        assert_eq!(bc[0].0, "base_cut");
        assert_eq!(bc[0].1.frequencies, crate::solve::base_cut(&poisoned));
        // Non-finite input is a real error, never a silent degrade.
        let bad = vec![f64::NAN; 5];
        let ctx = ArmContext::new(&bad, params, 0.2);
        assert!(NormSubArm.run(&ctx, &mut rng).is_err());
    }
}
