//! Target identification for the partial-knowledge scenario (paper §V-D,
//! §VI-A.4).
//!
//! LDPRecover\* needs the attacker-selected items. The paper obtains them
//! two ways:
//!
//! * For MGA they are "explicitly identified as target items" — the oracle
//!   case (the simulation passes the attack's true targets through).
//! * For AA they are "the items that exhibit the top-r/2 frequency increase
//!   following the attack" — [`top_k_increase`] against a pre-attack
//!   reference estimate.
//!
//! The module also provides [`MovingAverageDetector`], the
//! historical-time-series anomaly detector the paper's §V-D narrative
//! sketches (predict each item's frequency from its history, flag items
//! whose observed frequency deviates by more than `z` standard errors).

use ldp_common::{LdpError, Result};

/// Items with the `k` largest increases of `current` over `reference`
/// (the paper's AA rule with `k = r/2`), in decreasing-increase order.
///
/// # Errors
/// [`LdpError::DomainMismatch`] when the vectors differ in length;
/// [`LdpError::InvalidParameter`] when `k` is 0 or exceeds the domain.
pub fn top_k_increase(current: &[f64], reference: &[f64], k: usize) -> Result<Vec<usize>> {
    if current.len() != reference.len() {
        return Err(LdpError::DomainMismatch {
            expected: current.len(),
            got: reference.len(),
            context: "top-k increase",
        });
    }
    if k == 0 || k > current.len() {
        return Err(LdpError::invalid(format!(
            "k must be in 1..={}, got {k}",
            current.len()
        )));
    }
    let increases: Vec<f64> = current
        .iter()
        .zip(reference)
        .map(|(&c, &r)| c - r)
        .collect();
    Ok(ldp_common::vecmath::top_k_indices(&increases, k))
}

/// Moving-average + z-score anomaly detector over per-item frequency
/// histories.
#[derive(Debug, Clone, Copy)]
pub struct MovingAverageDetector {
    /// Number of trailing history rounds used for the prediction.
    pub window: usize,
    /// Flag items whose |observation − prediction| exceeds
    /// `z_threshold × max(σ_item, floor)`.
    pub z_threshold: f64,
    /// Variance floor preventing division by ~0 for flat histories.
    pub sigma_floor: f64,
}

impl Default for MovingAverageDetector {
    fn default() -> Self {
        Self {
            window: 5,
            z_threshold: 4.0,
            sigma_floor: 1e-4,
        }
    }
}

impl MovingAverageDetector {
    /// Flags outlier items in `current` given `history` (each row one past
    /// round of aggregated frequencies, oldest first).
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] without history rounds;
    /// [`LdpError::DomainMismatch`] for ragged rows.
    pub fn detect(&self, history: &[Vec<f64>], current: &[f64]) -> Result<Vec<usize>> {
        if history.is_empty() {
            return Err(LdpError::EmptyInput("frequency history"));
        }
        let d = current.len();
        for row in history {
            if row.len() != d {
                return Err(LdpError::DomainMismatch {
                    expected: d,
                    got: row.len(),
                    context: "history row",
                });
            }
        }
        let start = history.len().saturating_sub(self.window);
        let rows = &history[start..];
        let mut outliers = Vec::new();
        for v in 0..d {
            let mut moments = ldp_common::stats::RunningMoments::new();
            for row in rows {
                moments.push(row[v]);
            }
            let prediction = moments.mean();
            let sigma = moments.std_dev().max(self.sigma_floor);
            let z = (current[v] - prediction) / sigma;
            if z > self.z_threshold {
                outliers.push(v);
            }
        }
        Ok(outliers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_increase_orders_by_gain() {
        let reference = [0.1, 0.2, 0.3, 0.4];
        let current = [0.15, 0.5, 0.28, 0.42];
        // Increases: 0.05, 0.30, −0.02, 0.02.
        let top = top_k_increase(&current, &reference, 2).unwrap();
        assert_eq!(top, vec![1, 0]);
    }

    #[test]
    fn top_k_increase_validation() {
        assert!(top_k_increase(&[0.1], &[0.1, 0.2], 1).is_err());
        assert!(top_k_increase(&[0.1, 0.2], &[0.1, 0.2], 0).is_err());
        assert!(top_k_increase(&[0.1, 0.2], &[0.1, 0.2], 3).is_err());
    }

    #[test]
    fn detector_flags_spiked_item() {
        let history: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![0.25 + 0.001 * (i % 3) as f64, 0.25, 0.25, 0.25])
            .collect();
        let current = vec![0.25, 0.55, 0.25, 0.25]; // item 1 spiked
        let det = MovingAverageDetector::default();
        let outliers = det.detect(&history, &current).unwrap();
        assert_eq!(outliers, vec![1]);
    }

    #[test]
    fn detector_ignores_small_noise() {
        let history: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![0.5 + 0.01 * ((i % 5) as f64 - 2.0), 0.5])
            .collect();
        let current = vec![0.505, 0.498];
        let det = MovingAverageDetector::default();
        assert!(det.detect(&history, &current).unwrap().is_empty());
    }

    #[test]
    fn detector_validation() {
        let det = MovingAverageDetector::default();
        assert!(det.detect(&[], &[0.5]).is_err());
        assert!(det.detect(&[vec![0.5, 0.5]], &[0.5]).is_err());
    }

    #[test]
    fn detector_only_flags_increases() {
        // A *drop* is not an attack signature for frequency gains.
        let history: Vec<Vec<f64>> = (0..6).map(|_| vec![0.5, 0.5]).collect();
        let current = vec![0.1, 0.9];
        let det = MovingAverageDetector::default();
        let outliers = det.detect(&history, &current).unwrap();
        assert_eq!(outliers, vec![1]);
    }
}
