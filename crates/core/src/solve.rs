//! Step 3 — the constraint-inference solver (paper §V-D, Algorithm 1
//! lines 5–11).
//!
//! Recovery minimizes `‖f′ − f̃‖₂` subject to `f′ ≥ 0` and `Σ f′ = 1`
//! (Eq. 22–23). The paper solves the KKT conditions with an iterative
//! active-set scheme: start with all items active, subtract the mean excess
//! `(Σ_{D*} f̃ − 1)/|D*|` (Eq. 34–35), deactivate items that went negative,
//! repeat. This is the "norm-sub" post-processor of Wang et al. (NDSS 2020)
//! and converges to the exact Euclidean projection onto the probability
//! simplex — [`project_simplex`] (the sort-based Duchi et al. algorithm) is
//! provided as an independent oracle, and [`PostProcess::ClipNormalize`]
//! as a cheaper, biased ablation baseline.

use ldp_common::float::exactly_zero;
use ldp_common::{LdpError, Result};
use serde::{Deserialize, Serialize};

/// Which refinement step turns the raw genuine estimate into a probability
/// vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PostProcess {
    /// Algorithm 1's iterative KKT scheme (norm-sub). The paper's choice.
    #[default]
    NormSub,
    /// Exact Euclidean projection onto the simplex (sort-based).
    SimplexProjection,
    /// Clamp negatives to zero, then rescale to sum 1 (biased baseline).
    ClipNormalize,
    /// Base-Cut (Wang et al., NDSS 2020): zero every estimate below the
    /// significance threshold `θ = 2σ√(2·ln(2/δ))`-style cut — here the
    /// simpler population form `θ = 1/d` — then renormalize. Good for
    /// heavy-hitter-style workloads, biased for flat ones.
    BaseCut,
    /// No refinement: return the estimate as-is (for diagnostics; the
    /// output may violate both constraints).
    None,
}

impl PostProcess {
    /// Applies the refinement to `estimate`.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] on an empty estimate;
    /// [`LdpError::Numerical`] if the input contains non-finite values.
    pub fn apply(self, estimate: &[f64]) -> Result<Vec<f64>> {
        if estimate.is_empty() {
            return Err(LdpError::EmptyInput("estimate to refine"));
        }
        if let Some(bad) = estimate.iter().find(|x| !x.is_finite()) {
            return Err(LdpError::Numerical(format!(
                "estimate contains non-finite value {bad}"
            )));
        }
        Ok(match self {
            PostProcess::NormSub => norm_sub(estimate),
            PostProcess::SimplexProjection => project_simplex(estimate),
            PostProcess::ClipNormalize => clip_normalize(estimate),
            PostProcess::BaseCut => base_cut(estimate),
            PostProcess::None => estimate.to_vec(),
        })
    }
}

/// Algorithm 1, lines 5–11: iterative KKT refinement.
///
/// Invariants of the output: entrywise non-negative, sums to 1 (within
/// floating-point tolerance).
pub fn norm_sub(estimate: &[f64]) -> Vec<f64> {
    let d = estimate.len();
    let mut active: Vec<bool> = vec![true; d];
    let mut active_count = d;
    let mut out = vec![0.0; d];
    loop {
        // μ/2 of Eq. (34): the per-item excess over the simplex constraint.
        let mut active_sum = 0.0f64;
        let mut comp = 0.0f64;
        for (&x, &a) in estimate.iter().zip(&active) {
            if a {
                let y = x - comp;
                let t = active_sum + y;
                comp = (t - active_sum) - y;
                active_sum = t;
            }
        }
        let shift = (active_sum - 1.0) / active_count as f64;
        let mut changed = false;
        for v in 0..d {
            if !active[v] {
                continue;
            }
            let val = estimate[v] - shift;
            if val < 0.0 {
                active[v] = false;
                active_count -= 1;
                changed = true;
                out[v] = 0.0;
            } else {
                out[v] = val;
            }
        }
        if !changed {
            return out;
        }
        if active_count == 0 {
            // All mass removed (pathological input, e.g. extremely negative
            // estimates): fall back to uniform, the centroid of the simplex.
            return vec![1.0 / d as f64; d];
        }
    }
}

/// Exact Euclidean projection onto the probability simplex
/// (Duchi et al., ICML 2008): `f′(v) = max(f̃(v) − τ, 0)` with the unique
/// `τ` making the result sum to 1.
pub fn project_simplex(estimate: &[f64]) -> Vec<f64> {
    let mut sorted = estimate.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    let mut cumulative = 0.0f64;
    let mut tau = 0.0f64;
    let mut support = 0usize;
    for (i, &u) in sorted.iter().enumerate() {
        cumulative += u;
        let candidate = (cumulative - 1.0) / (i + 1) as f64;
        if u - candidate > 0.0 {
            tau = candidate;
            support = i + 1;
        }
    }
    debug_assert!(support >= 1, "projection support must be non-empty");
    estimate.iter().map(|&x| (x - tau).max(0.0)).collect()
}

/// Clamp negatives to zero, then rescale to sum 1. Falls back to uniform
/// when no positive mass remains.
pub fn clip_normalize(estimate: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = estimate.iter().map(|&x| x.max(0.0)).collect();
    ldp_common::vecmath::normalize_to_simplex_sum(&mut out);
    out
}

/// Base-Cut: zero estimates below `1/d` (the uniform level), renormalize.
///
/// A sparsity-inducing alternative to norm-sub for heavy-hitter workloads;
/// falls back to clip+normalize when the cut would remove everything.
pub fn base_cut(estimate: &[f64]) -> Vec<f64> {
    let d = estimate.len();
    let threshold = 1.0 / d as f64;
    let mut out: Vec<f64> = estimate
        .iter()
        .map(|&x| if x >= threshold { x } else { 0.0 })
        .collect();
    if out.iter().all(|&x| exactly_zero(x)) {
        return clip_normalize(estimate);
    }
    ldp_common::vecmath::normalize_to_simplex_sum(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::vecmath::is_probability_vector;

    #[test]
    fn norm_sub_already_feasible_input_shifts_to_sum_one() {
        // A feasible-but-unnormalized input is shifted uniformly.
        let out = norm_sub(&[0.5, 0.5, 0.5, 0.5]);
        assert!(is_probability_vector(&out, 1e-9));
        assert!(out.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn norm_sub_removes_negatives() {
        let out = norm_sub(&[1.5, -0.4, 0.2]);
        assert!(is_probability_vector(&out, 1e-9));
        assert_eq!(out[1], 0.0);
        // Known fixed point computed by hand: [1.0, 0, 0].
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!((out[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn norm_sub_handles_pathological_all_negative() {
        let out = norm_sub(&[-5.0, -3.0]);
        assert!(is_probability_vector(&out, 1e-9));
    }

    #[test]
    fn norm_sub_matches_exact_projection() {
        // The iterative KKT scheme and the sort-based projection solve the
        // same optimization problem; spot-check on varied inputs.
        let cases: Vec<Vec<f64>> = vec![
            vec![0.2, 0.3, 0.6],
            vec![-0.1, 0.05, 0.9, 0.4],
            vec![10.0, -10.0, 0.5, 0.5, 0.0],
            vec![0.0; 7],
            vec![1.0],
            vec![0.017, -0.003, 0.12, 0.09, 0.777, -0.2, 0.19],
        ];
        for est in cases {
            let a = norm_sub(&est);
            let b = project_simplex(&est);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "est={est:?}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn projection_is_identity_on_simplex_points() {
        let p = [0.1, 0.2, 0.3, 0.4];
        let out = project_simplex(&p);
        for (x, y) in out.iter().zip(&p) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_normalize_baseline() {
        let out = clip_normalize(&[0.5, -1.0, 0.5]);
        assert!(is_probability_vector(&out, 1e-9));
        assert_eq!(out[1], 0.0);
        assert!((out[0] - 0.5).abs() < 1e-12);
        // Degenerate input → uniform.
        let out = clip_normalize(&[-1.0, -2.0]);
        assert!(is_probability_vector(&out, 1e-9));
    }

    #[test]
    fn post_process_dispatch_and_validation() {
        assert!(PostProcess::NormSub.apply(&[]).is_err());
        assert!(PostProcess::NormSub.apply(&[f64::NAN]).is_err());
        assert!(PostProcess::NormSub.apply(&[f64::INFINITY, 0.0]).is_err());
        let raw = [0.4, -0.1, 0.8];
        let none = PostProcess::None.apply(&raw).unwrap();
        assert_eq!(none, raw.to_vec());
        for pp in [
            PostProcess::NormSub,
            PostProcess::SimplexProjection,
            PostProcess::ClipNormalize,
            PostProcess::BaseCut,
        ] {
            let out = pp.apply(&raw).unwrap();
            assert!(is_probability_vector(&out, 1e-9), "{pp:?}: {out:?}");
        }
    }

    #[test]
    fn base_cut_zeroes_sub_uniform_mass() {
        // d = 4 ⇒ threshold 0.25: items below it vanish.
        let out = base_cut(&[0.5, 0.3, 0.2, 0.1]);
        assert_eq!(out[2], 0.0);
        assert_eq!(out[3], 0.0);
        assert!((out[0] - 0.5 / 0.8).abs() < 1e-12);
        assert!(is_probability_vector(&out, 1e-9));
        // Everything below threshold ⇒ clip+normalize fallback.
        let out = base_cut(&[0.05, 0.04, 0.03, -0.2]);
        assert!(is_probability_vector(&out, 1e-9));
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn norm_sub_minimizes_l2_among_candidates() {
        // The solver output must be at least as close (in L2) to the raw
        // estimate as the clip-normalize baseline is — it is the optimum.
        let est = [0.6, -0.2, 0.5, 0.3, -0.05];
        let opt = norm_sub(&est);
        let base = clip_normalize(&est);
        let d = |a: &[f64]| -> f64 {
            a.iter()
                .zip(&est)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f64>()
        };
        assert!(d(&opt) <= d(&base) + 1e-12);
    }
}
