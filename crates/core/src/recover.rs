//! The LDPRecover pipeline (paper Algorithm 1).
//!
//! Composes the three steps: malicious frequency learning (Step 2, from
//! the protocol constants alone or from the known target set), the genuine
//! frequency estimator (Step 1), and the constraint-inference refinement
//! (Step 3). [`LdpRecover`] is the configuration object; [`RecoveryOutcome`]
//! retains every intermediate artifact the paper's evaluation measures
//! (recovered frequencies for Fig. 3/5/6, malicious estimates for Fig. 7).

use ldp_common::{LdpError, Result};
use ldp_protocols::PureParams;
use serde::{Deserialize, Serialize};

use crate::estimator::{check_eta, genuine_estimate};
use crate::malicious::{partial_knowledge_estimate, MaliciousSumModel};
use crate::solve::PostProcess;

/// What the server knows about the attack (paper §V-D).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Knowledge {
    /// Non-knowledge scenario: LDPRecover proper.
    #[default]
    None,
    /// Partial-knowledge scenario: the attacker-selected items are known
    /// (LDPRecover\* in the paper's figures).
    Targets(Vec<usize>),
}

/// Configured frequency-recovery method.
///
/// Defaults follow the paper's evaluation: `η = 0.2`, Eq. (21) malicious
/// sum, norm-sub refinement, no attack knowledge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdpRecover {
    eta: f64,
    knowledge: Knowledge,
    sum_model: MaliciousSumModel,
    post_process: PostProcess,
    /// Minimum `|D₁|/d` before the non-knowledge spread falls back to
    /// uniform-over-D (0 = the paper's exact Eq. 26 behaviour).
    d1_fallback_fraction: f64,
}

/// Everything a recovery run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The recovered frequencies `f′_X` (non-negative, summing to 1 unless
    /// [`PostProcess::None`] was configured).
    pub frequencies: Vec<f64>,
    /// The pre-refinement genuine estimate `f̃_X` (Eq. 27 / Eq. 31).
    pub estimated_genuine: Vec<f64>,
    /// The malicious frequency estimate `f̃′_Y` / `f̃*_Y` used by the
    /// estimator — the quantity Fig. 7 compares against ground truth.
    pub malicious_estimate: Vec<f64>,
    /// The learned sum `Σ_v f̃_Y(v)` (Eq. 21 or the collision-aware form).
    pub malicious_sum: f64,
}

impl LdpRecover {
    /// Creates the recovery method with the assumed malicious/genuine user
    /// ratio `η = m/n` (the paper defaults to 0.2 — deliberately larger
    /// than the true ratio, which the server does not know).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `η` is negative or non-finite.
    pub fn new(eta: f64) -> Result<Self> {
        check_eta(eta)?;
        Ok(Self {
            eta,
            knowledge: Knowledge::None,
            sum_model: MaliciousSumModel::Paper,
            post_process: PostProcess::NormSub,
            d1_fallback_fraction: 0.0,
        })
    }

    /// Switches to the partial-knowledge scenario (LDPRecover\*) with the
    /// given target set.
    pub fn with_targets(mut self, targets: Vec<usize>) -> Self {
        self.knowledge = Knowledge::Targets(targets);
        self
    }

    /// Overrides the malicious-sum model (ablation; see
    /// [`MaliciousSumModel`]).
    pub fn with_sum_model(mut self, model: MaliciousSumModel) -> Self {
        self.sum_model = model;
        self
    }

    /// Overrides the refinement step (ablation; see [`PostProcess`]).
    pub fn with_post_process(mut self, post: PostProcess) -> Self {
        self.post_process = post;
        self
    }

    /// Enables the `D₁` uniform fallback (extension; see
    /// [`crate::malicious::non_knowledge_estimate_with_fallback`]): when
    /// fewer than `fraction·d` items have positive poisoned frequency, the
    /// malicious sum is spread over the whole domain instead. 0 disables
    /// (the paper's exact behaviour).
    pub fn with_d1_fallback(mut self, fraction: f64) -> Self {
        self.d1_fallback_fraction = fraction;
        self
    }

    /// Supplies an explicit malicious frequency vector instead of learning
    /// one — the hook the k-means integration (LDPRecover-KM, §VII-B) uses.
    ///
    /// # Errors
    /// Propagates estimator validation (length mismatch).
    pub fn recover_with_malicious(
        &self,
        poisoned: &[f64],
        malicious: &[f64],
    ) -> Result<RecoveryOutcome> {
        let estimated_genuine = genuine_estimate(poisoned, malicious, self.eta)?;
        let frequencies = self.post_process.apply(&estimated_genuine)?;
        Ok(RecoveryOutcome {
            frequencies,
            estimated_genuine,
            malicious_estimate: malicious.to_vec(),
            malicious_sum: malicious.iter().sum(),
        })
    }

    /// Runs LDPRecover / LDPRecover\* on the poisoned frequency vector.
    ///
    /// # Errors
    /// * [`LdpError::DomainMismatch`] when `poisoned.len() != d`.
    /// * [`LdpError::EmptyInput`] for an empty input.
    /// * Propagates target validation in the partial-knowledge scenario.
    pub fn recover(&self, poisoned: &[f64], params: PureParams) -> Result<RecoveryOutcome> {
        let targets = match &self.knowledge {
            Knowledge::None => None,
            Knowledge::Targets(targets) => Some(targets.as_slice()),
        };
        self.recover_inner(poisoned, params, targets)
    }

    /// Runs the partial-knowledge scenario (LDPRecover\*) over a borrowed
    /// target set, overriding [`LdpRecover::knowledge`] for this call —
    /// the per-trial entry point of the star defense arm, which would
    /// otherwise have to clone the whole configuration and the targets
    /// just to thread them through [`Knowledge::Targets`].
    ///
    /// # Errors
    /// Everything [`LdpRecover::recover`] rejects, plus target validation.
    pub fn recover_with_targets(
        &self,
        poisoned: &[f64],
        params: PureParams,
        targets: &[usize],
    ) -> Result<RecoveryOutcome> {
        self.recover_inner(poisoned, params, Some(targets))
    }

    /// Shared body of the two public entry points.
    fn recover_inner(
        &self,
        poisoned: &[f64],
        params: PureParams,
        targets: Option<&[usize]>,
    ) -> Result<RecoveryOutcome> {
        params
            .domain()
            .check_len(poisoned, "poisoned frequencies")?;
        if poisoned.is_empty() {
            return Err(LdpError::EmptyInput("poisoned frequencies"));
        }
        let malicious_sum = self.sum_model.sum(params);
        let malicious_estimate = match targets {
            None => crate::malicious::non_knowledge_estimate_with_fallback(
                poisoned,
                malicious_sum,
                self.d1_fallback_fraction,
            )?,
            Some(targets) => partial_knowledge_estimate(params, targets, malicious_sum)?,
        };
        let estimated_genuine = genuine_estimate(poisoned, &malicious_estimate, self.eta)?;
        let frequencies = self.post_process.apply(&estimated_genuine)?;
        Ok(RecoveryOutcome {
            frequencies,
            estimated_genuine,
            malicious_estimate,
            malicious_sum,
        })
    }

    /// Runs recovery directly on raw aggregated support counts — the
    /// online entry point of the streaming ingestion engine, which holds
    /// its state as merged count accumulators and re-recovers at every
    /// epoch boundary without ever materializing a frequency snapshot
    /// itself. Exactly equivalent to debiasing (`C(v)` → `f̃(v)`, paper
    /// Eq. (11) divided by `N`) followed by [`LdpRecover::recover`].
    ///
    /// # Errors
    /// Propagates debias validation (shape mismatch, zero reports) and
    /// everything [`LdpRecover::recover`] rejects.
    pub fn recover_from_counts(
        &self,
        counts: &[u64],
        reports: usize,
        params: PureParams,
    ) -> Result<RecoveryOutcome> {
        let poisoned = params.debias_frequencies(counts, reports)?;
        self.recover(&poisoned, params)
    }

    /// The assumed ratio `η`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The configured knowledge scenario.
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::vecmath::is_probability_vector;
    use ldp_common::Domain;

    fn grr_params(d: usize, eps: f64) -> PureParams {
        let e = eps.exp();
        let denom = d as f64 - 1.0 + e;
        PureParams::new(e / denom, 1.0 / denom, Domain::new(d).unwrap()).unwrap()
    }

    #[test]
    fn rejects_invalid_eta() {
        assert!(LdpRecover::new(-0.1).is_err());
        assert!(LdpRecover::new(f64::NAN).is_err());
        assert!(LdpRecover::new(0.0).is_ok());
    }

    #[test]
    fn output_is_a_probability_vector() {
        let params = grr_params(6, 0.5);
        let poisoned = vec![0.4, 0.25, 0.2, 0.1, 0.05, -0.02];
        let out = LdpRecover::new(0.2)
            .unwrap()
            .recover(&poisoned, params)
            .unwrap();
        assert!(is_probability_vector(&out.frequencies, 1e-9));
        assert_eq!(out.frequencies.len(), 6);
        assert_eq!(out.malicious_estimate.len(), 6);
        assert!((out.malicious_sum - params.malicious_frequency_sum()).abs() < 1e-12);
    }

    #[test]
    fn shape_validation() {
        let params = grr_params(4, 0.5);
        let rec = LdpRecover::new(0.2).unwrap();
        assert!(rec.recover(&[0.5, 0.5], params).is_err());
    }

    #[test]
    fn eta_zero_reduces_to_plain_post_processing() {
        // With η = 0 the estimator is the identity; recovery is then just
        // Algorithm 1's refinement of the poisoned frequencies.
        let params = grr_params(4, 0.5);
        let poisoned = vec![0.5, 0.3, 0.3, -0.1];
        let out = LdpRecover::new(0.0)
            .unwrap()
            .recover(&poisoned, params)
            .unwrap();
        let direct = crate::solve::norm_sub(&poisoned);
        for (a, b) in out.frequencies.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_knowledge_uses_target_model() {
        let params = grr_params(10, 0.5);
        let poisoned = vec![0.08; 10];
        let targets = vec![1usize, 4];
        let out = LdpRecover::new(0.2)
            .unwrap()
            .with_targets(targets.clone())
            .recover(&poisoned, params)
            .unwrap();
        // Targets carry the positive malicious share, so their recovered
        // frequencies must be *reduced* relative to non-targets.
        assert!(out.frequencies[1] < out.frequencies[0]);
        assert!(out.frequencies[4] < out.frequencies[0]);
        assert!(matches!(out.malicious_estimate[1], x if x > 0.0));
        assert!(matches!(out.malicious_estimate[0], x if x < 0.0));
    }

    #[test]
    fn borrowed_targets_entry_point_matches_owned_knowledge() {
        let params = grr_params(10, 0.5);
        let poisoned = vec![0.08; 10];
        let targets = vec![1usize, 4];
        let base = LdpRecover::new(0.2).unwrap();
        let borrowed = base
            .recover_with_targets(&poisoned, params, &targets)
            .unwrap();
        let owned = base
            .clone()
            .with_targets(targets)
            .recover(&poisoned, params)
            .unwrap();
        assert_eq!(borrowed, owned, "the two entry points must agree bitwise");
        // The base configuration is untouched (no knowledge accrued).
        assert_eq!(base.knowledge(), &Knowledge::None);
        // Target validation still applies.
        assert!(base.recover_with_targets(&poisoned, params, &[99]).is_err());
    }

    #[test]
    fn recover_with_malicious_uses_supplied_vector() {
        let poisoned = vec![0.5, 0.5];
        let malicious = vec![1.0, 0.0];
        let out = LdpRecover::new(0.5)
            .unwrap()
            .recover_with_malicious(&poisoned, &malicious)
            .unwrap();
        // Estimator: 1.5·0.5 − 0.5·1 = 0.25 and 1.5·0.5 − 0 = 0.75.
        assert!((out.estimated_genuine[0] - 0.25).abs() < 1e-12);
        assert!((out.estimated_genuine[1] - 0.75).abs() < 1e-12);
        assert!(is_probability_vector(&out.frequencies, 1e-9));
    }

    #[test]
    fn recover_from_counts_is_debias_then_recover() {
        let params = grr_params(5, 0.5);
        let counts = [40u64, 25, 20, 10, 5];
        let reports = 100usize;
        let rec = LdpRecover::new(0.2).unwrap();
        let via_counts = rec.recover_from_counts(&counts, reports, params).unwrap();
        let debias = params.debias_frequencies(&counts, reports).unwrap();
        let via_freqs = rec.recover(&debias, params).unwrap();
        assert_eq!(
            via_counts, via_freqs,
            "the two entry points must agree bitwise"
        );
        assert!(is_probability_vector(&via_counts.frequencies, 1e-9));
        // Shape and emptiness validation propagate from the debias step.
        assert!(rec
            .recover_from_counts(&counts[..3], reports, params)
            .is_err());
        assert!(rec.recover_from_counts(&counts, 0, params).is_err());
    }

    #[test]
    fn recovery_reduces_error_in_a_synthetic_poisoning() {
        // End-to-end sanity in expectation space (no sampling noise):
        // true genuine f_X, malicious mass concentrated on one item, the
        // paper's mixture (Eq. 14), then recovery. MSE after must beat
        // MSE before.
        let d = 20usize;
        let params = grr_params(d, 0.5);
        let mut f_x = vec![1.0 / d as f64; d];
        f_x[0] = 0.3;
        ldp_common::vecmath::normalize_to_simplex_sum(&mut f_x);

        // Malicious: all reports encode item 7 → f̃_Y(7) = (1−q)/(p−q)…
        // in the paper's single-support model: (1 − q)/(p−q) at 7 and
        // −q/(p−q) elsewhere.
        let q = params.q();
        let pq = params.p() - params.q();
        let mut f_y = vec![-q / pq; d];
        f_y[7] = (1.0 - q) / pq;

        let beta = 0.05;
        let eta_true: f64 = beta / (1.0 - beta);
        let poisoned: Vec<f64> = f_x
            .iter()
            .zip(&f_y)
            .map(|(&x, &y)| (x + eta_true * y) / (1.0 + eta_true))
            .collect();

        let out = LdpRecover::new(0.2)
            .unwrap()
            .recover(&poisoned, params)
            .unwrap();
        let mse_before = ldp_common::vecmath::mse(&poisoned, &f_x);
        let mse_after = ldp_common::vecmath::mse(&out.frequencies, &f_x);
        assert!(
            mse_after < mse_before,
            "after={mse_after}, before={mse_before}"
        );
    }
}
