//! Approximation-error theory (paper §V-E, Theorems 4–5).
//!
//! LDPRecover's estimator treats the aggregated frequencies as normal
//! (Lemmas 1–2). The Berry–Esseen-style bounds of Theorems 4–5 quantify the
//! CDF distance between truth and normal approximation:
//!
//! ```text
//! sup_w |Θ̃(w) − Θ̂(w)| ≤ 0.33554·(g + 0.415·σ³)/(σ³·√N)
//! ```
//!
//! with `g` the third absolute central moment of the single-report estimate,
//! `σ` its standard deviation, and `N` the number of reports (m for the
//! malicious side, n for the genuine side). The `theory_validation`
//! integration test verifies the empirical Kolmogorov–Smirnov distance sits
//! below these bounds.

use ldp_common::{LdpError, Result};
use ldp_protocols::PureParams;

/// The Berry–Esseen-style constant of Theorems 4–5.
pub const BERRY_ESSEEN_C: f64 = 0.33554;

/// Evaluates the Theorem 4/5 bound
/// `C·(g + 0.415·σ³)/(σ³·√N)` for `N` reports.
///
/// # Errors
/// [`LdpError::InvalidParameter`] when `σ ≤ 0`, `g < 0`, or `N = 0` —
/// the bound is undefined for degenerate distributions.
pub fn berry_esseen_bound(third_moment: f64, sigma: f64, reports: usize) -> Result<f64> {
    if sigma.is_nan() || sigma <= 0.0 {
        return Err(LdpError::invalid(format!(
            "Berry–Esseen bound needs σ > 0, got {sigma}"
        )));
    }
    if third_moment.is_nan() || third_moment < 0.0 {
        return Err(LdpError::invalid(format!(
            "third absolute moment must be ≥ 0, got {third_moment}"
        )));
    }
    if reports == 0 {
        return Err(LdpError::invalid("Berry–Esseen bound needs ≥ 1 report"));
    }
    let sigma3 = sigma * sigma * sigma;
    Ok(BERRY_ESSEEN_C * (third_moment + 0.415 * sigma3) / (sigma3 * (reports as f64).sqrt()))
}

/// Theorem 4 instantiated for the malicious frequency `f̃_Y(v)` under an
/// adaptive attack with sampling probability `P(v)`: per-report moments from
/// the shifted-Bernoulli support indicator.
///
/// # Errors
/// Propagates [`berry_esseen_bound`] validation (degenerate `P(v) ∈ {0,1}`
/// gives σ = 0).
pub fn malicious_cdf_bound(params: PureParams, attack_prob: f64, m: usize) -> Result<f64> {
    let g = crate::estimator::malicious_report_third_moment(params, attack_prob);
    // Per-report σ (not divided by m): Bernoulli(P) scaled by 1/(p−q).
    let pq = params.p() - params.q();
    let sigma = (attack_prob * (1.0 - attack_prob)).sqrt() / pq;
    berry_esseen_bound(g, sigma, m)
}

/// Theorem 5 instantiated for the genuine frequency `f̃_X(v)` of an item
/// with true frequency `f`: the per-report support indicator is Bernoulli
/// with success probability `s = f·p + (1−f)·q`, scaled by `1/(p−q)`.
///
/// # Errors
/// Propagates [`berry_esseen_bound`] validation.
pub fn genuine_cdf_bound(params: PureParams, true_freq: f64, n: usize) -> Result<f64> {
    let p = params.p();
    let q = params.q();
    let pq = p - q;
    let s = true_freq * p + (1.0 - true_freq) * q;
    let sigma = (s * (1.0 - s)).sqrt() / pq;
    // Third absolute central moment of the scaled Bernoulli:
    // values (1−s)/(p−q) w.p. s and (−s)/(p−q) w.p. 1−s around mean 0.
    let hi = (1.0 - s) / pq;
    let lo = -s / pq;
    let g = s * hi.abs().powi(3) + (1.0 - s) * lo.abs().powi(3);
    berry_esseen_bound(g, sigma, n)
}

/// Convergence-rate helper: the bound scales as `1/√N`, so halving the
/// error takes 4× the reports. Returns the report count needed to push the
/// bound below `target`.
///
/// # Errors
/// [`LdpError::InvalidParameter`] for non-positive targets or degenerate
/// moments.
pub fn reports_for_bound(third_moment: f64, sigma: f64, target: f64) -> Result<usize> {
    if target.is_nan() || target <= 0.0 {
        return Err(LdpError::invalid("target bound must be positive"));
    }
    let at_one = berry_esseen_bound(third_moment, sigma, 1)?;
    Ok(((at_one / target).powi(2)).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::Domain;

    fn params() -> PureParams {
        PureParams::new(0.5, 0.25, Domain::new(10).unwrap()).unwrap()
    }

    #[test]
    fn bound_decreases_as_inverse_sqrt() {
        let b100 = berry_esseen_bound(1.0, 0.5, 100).unwrap();
        let b400 = berry_esseen_bound(1.0, 0.5, 400).unwrap();
        assert!((b100 / b400 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bound_validation() {
        assert!(berry_esseen_bound(1.0, 0.0, 10).is_err());
        assert!(berry_esseen_bound(-1.0, 0.5, 10).is_err());
        assert!(berry_esseen_bound(1.0, 0.5, 0).is_err());
    }

    #[test]
    fn malicious_bound_finite_for_interior_probability() {
        let b = malicious_cdf_bound(params(), 0.3, 1_000).unwrap();
        assert!(b.is_finite() && b > 0.0);
        // Degenerate attack probability ⇒ σ = 0 ⇒ error.
        assert!(malicious_cdf_bound(params(), 0.0, 1_000).is_err());
        assert!(malicious_cdf_bound(params(), 1.0, 1_000).is_err());
    }

    #[test]
    fn genuine_bound_finite_and_smaller_at_larger_n() {
        let small = genuine_cdf_bound(params(), 0.1, 1_000).unwrap();
        let large = genuine_cdf_bound(params(), 0.1, 100_000).unwrap();
        assert!(large < small);
        assert!((small / large - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reports_for_bound_inverts() {
        let n = reports_for_bound(1.0, 0.5, 0.01).unwrap();
        let achieved = berry_esseen_bound(1.0, 0.5, n).unwrap();
        assert!(achieved <= 0.01 + 1e-12);
        // One fewer report must miss the target (up to ceil slack).
        if n > 1 {
            let missed = berry_esseen_bound(1.0, 0.5, n - 1).unwrap();
            assert!(missed > 0.0099);
        }
        assert!(reports_for_bound(1.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn berry_esseen_constant_matches_paper() {
        assert_eq!(BERRY_ESSEEN_C, 0.33554);
    }
}
