//! The paper's two evaluation workloads, reproduced synthetically.
//!
//! | Paper dataset | Attribute | d | n | Our stand-in |
//! |---|---|---|---|---|
//! | IPUMS (2017 census) | city | 102 | 389,894 | Zipf(1.05) over 102 items |
//! | SF Fire ("Alarms")  | unit ID | 490 | 667,574 | Zipf(0.75) over 490 items |
//!
//! City populations are classically Zipf-distributed with exponent ≈ 1;
//! fire-unit workloads are flatter (dispatch spreads load), hence the
//! smaller exponent. LDPRecover's behaviour depends on `(d, n, ε, β, η)`
//! and the broad frequency shape only — see DESIGN.md §3 for the full
//! substitution argument and `Dataset::from_item_file` for plugging in the
//! real extracts.

use ldp_common::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::synthetic::zipf_dataset;

/// IPUMS domain size (paper §VI-A.1).
pub const IPUMS_DOMAIN: usize = 102;
/// IPUMS user count (paper §VI-A.1).
pub const IPUMS_USERS: usize = 389_894;
/// Fire domain size (paper §VI-A.1).
pub const FIRE_DOMAIN: usize = 490;
/// Fire user count (paper §VI-A.1).
pub const FIRE_USERS: usize = 667_574;

/// IPUMS-like synthetic workload (d = 102, n = 389,894, Zipf 1.05).
///
/// # Errors
/// Propagates generator validation (never fails for these constants).
pub fn ipums_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    zipf_dataset("IPUMS", IPUMS_DOMAIN, IPUMS_USERS, 1.05, rng)
}

/// Fire-like synthetic workload (d = 490, n = 667,574, Zipf 0.75).
///
/// # Errors
/// Propagates generator validation (never fails for these constants).
pub fn fire_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    zipf_dataset("Fire", FIRE_DOMAIN, FIRE_USERS, 0.75, rng)
}

/// Which evaluation workload an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// IPUMS-like (d = 102, n = 389,894).
    Ipums,
    /// Fire-like (d = 490, n = 667,574).
    Fire,
}

impl DatasetKind {
    /// Both workloads, in the paper's presentation order.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::Ipums, DatasetKind::Fire];

    /// Materializes the workload (optionally scaled down; see
    /// [`Dataset::subsample`]).
    ///
    /// # Errors
    /// Propagates generator / subsample validation.
    pub fn generate<R: Rng + ?Sized>(self, scale: f64, rng: &mut R) -> Result<Dataset> {
        let full = match self {
            DatasetKind::Ipums => ipums_like(rng)?,
            DatasetKind::Fire => fire_like(rng)?,
        };
        if scale == 1.0 {
            Ok(full)
        } else {
            full.subsample(scale, rng)
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Ipums => "IPUMS",
            DatasetKind::Fire => "Fire",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn ipums_matches_paper_dimensions() {
        let mut rng = rng_from_seed(1);
        // Scale down for test speed; dimensions verified proportionally.
        let ds = DatasetKind::Ipums.generate(0.01, &mut rng).unwrap();
        assert_eq!(ds.domain().size(), IPUMS_DOMAIN);
        assert_eq!(ds.len(), (IPUMS_USERS as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn fire_matches_paper_dimensions() {
        let mut rng = rng_from_seed(2);
        let ds = DatasetKind::Fire.generate(0.01, &mut rng).unwrap();
        assert_eq!(ds.domain().size(), FIRE_DOMAIN);
        assert_eq!(ds.len(), (FIRE_USERS as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn fire_is_flatter_than_ipums() {
        let mut rng = rng_from_seed(3);
        let ipums = DatasetKind::Ipums.generate(0.05, &mut rng).unwrap();
        let fire = DatasetKind::Fire.generate(0.05, &mut rng).unwrap();
        let top_ipums = ipums.true_frequencies().into_iter().fold(0.0, f64::max);
        let top_fire = fire.true_frequencies().into_iter().fold(0.0, f64::max);
        assert!(
            top_ipums > top_fire,
            "ipums head {top_ipums} vs fire head {top_fire}"
        );
    }

    #[test]
    fn full_scale_constants() {
        assert_eq!(IPUMS_DOMAIN, 102);
        assert_eq!(IPUMS_USERS, 389_894);
        assert_eq!(FIRE_DOMAIN, 490);
        assert_eq!(FIRE_USERS, 667_574);
    }
}
