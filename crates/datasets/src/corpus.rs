//! The paper's two evaluation workloads, reproduced synthetically.
//!
//! | Paper dataset | Attribute | d | n | Our stand-in |
//! |---|---|---|---|---|
//! | IPUMS (2017 census) | city | 102 | 389,894 | Zipf(1.05) over 102 items |
//! | SF Fire ("Alarms")  | unit ID | 490 | 667,574 | Zipf(0.75) over 490 items |
//!
//! City populations are classically Zipf-distributed with exponent ≈ 1;
//! fire-unit workloads are flatter (dispatch spreads load), hence the
//! smaller exponent. LDPRecover's behaviour depends on `(d, n, ε, β, η)`
//! and the broad frequency shape only — see DESIGN.md §3 for the full
//! substitution argument and `Dataset::from_item_file` for plugging in the
//! real extracts.

use ldp_common::float::exact_eq;
use ldp_common::sampling::sample_multinomial;
use ldp_common::{Domain, LdpError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, PopulationCounts};
use crate::synthetic::{zipf_counts, zipf_dataset};

/// IPUMS domain size (paper §VI-A.1).
pub const IPUMS_DOMAIN: usize = 102;
/// IPUMS user count (paper §VI-A.1).
pub const IPUMS_USERS: usize = 389_894;
/// Fire domain size (paper §VI-A.1).
pub const FIRE_DOMAIN: usize = 490;
/// Fire user count (paper §VI-A.1).
pub const FIRE_USERS: usize = 667_574;

/// IPUMS-like synthetic workload (d = 102, n = 389,894, Zipf 1.05).
///
/// # Errors
/// Propagates generator validation (never fails for these constants).
pub fn ipums_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    let (name, d, n, s) = DatasetKind::Ipums.spec();
    zipf_dataset(name, d, n, s, rng)
}

/// Fire-like synthetic workload (d = 490, n = 667,574, Zipf 0.75).
///
/// # Errors
/// Propagates generator validation (never fails for these constants).
pub fn fire_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    let (name, d, n, s) = DatasetKind::Fire.spec();
    zipf_dataset(name, d, n, s, rng)
}

/// Which evaluation workload an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// IPUMS-like (d = 102, n = 389,894).
    Ipums,
    /// Fire-like (d = 490, n = 667,574).
    Fire,
}

impl DatasetKind {
    /// Both workloads, in the paper's presentation order.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::Ipums, DatasetKind::Fire];

    /// `(name, d, n, zipf exponent)` of the synthetic stand-in.
    fn spec(self) -> (&'static str, usize, usize, f64) {
        match self {
            DatasetKind::Ipums => ("IPUMS", IPUMS_DOMAIN, IPUMS_USERS, 1.05),
            DatasetKind::Fire => ("Fire", FIRE_DOMAIN, FIRE_USERS, 0.75),
        }
    }

    /// Materializes the workload (optionally scaled down; see
    /// [`Dataset::subsample`]).
    ///
    /// # Errors
    /// Propagates generator / subsample validation.
    pub fn generate<R: Rng + ?Sized>(self, scale: f64, rng: &mut R) -> Result<Dataset> {
        let full = match self {
            DatasetKind::Ipums => ipums_like(rng)?,
            DatasetKind::Fire => fire_like(rng)?,
        };
        if exact_eq(scale, 1.0) {
            Ok(full)
        } else {
            full.subsample(scale, rng)
        }
    }

    /// Samples the workload's *count vector* directly, in `O(d)` instead
    /// of `O(n)` — exactly distributed as [`DatasetKind::generate`]'s
    /// counts at the same scale. The full-corpus counts are one
    /// `Multinomial(n, zipf)` draw; scaling down composes a second
    /// multinomial over the realized full-corpus frequencies, mirroring
    /// [`Dataset::subsample`]'s draw-with-replacement (whose counts have
    /// that exact conditional law).
    ///
    /// This is the dataset path of the batched aggregation engine: the
    /// engine never looks at individual users, so nothing `O(n)` needs to
    /// exist at all.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `scale ∉ (0, 1]`; otherwise
    /// propagates generator validation.
    pub fn generate_counts<R: Rng + ?Sized>(
        self,
        scale: f64,
        rng: &mut R,
    ) -> Result<PopulationCounts> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(LdpError::invalid(format!(
                "scale must be in (0,1], got {scale}"
            )));
        }
        let (_, _, n, _) = self.spec();
        let users = ((n as f64) * scale).ceil().max(1.0) as usize;
        self.generate_user_counts(users, rng)
    }

    /// [`DatasetKind::generate_counts`] with an explicit user count
    /// instead of a fraction — the population path of the streaming
    /// ingestion engine, whose epochs are sized in users, not in fractions
    /// of the full corpus. `generate_counts(scale)` is exactly
    /// `generate_user_counts(⌈n·scale⌉)` (same RNG draws, same counts), so
    /// the two entry points are bitwise interchangeable wherever the user
    /// counts agree. Counts are drawn with replacement from the realized
    /// corpus frequencies (mirroring [`Dataset::subsample`]), so `users`
    /// may also *exceed* the corpus — a stream can ingest more traffic
    /// than the static dataset ever held.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `users` is 0; otherwise
    /// propagates generator validation.
    pub fn generate_user_counts<R: Rng + ?Sized>(
        self,
        users: usize,
        rng: &mut R,
    ) -> Result<PopulationCounts> {
        let (name, d, n, s) = self.spec();
        if users == 0 {
            return Err(LdpError::invalid("user count must be ≥ 1"));
        }
        let full = zipf_counts(name, d, n, s, rng)?;
        if users == n {
            return Ok(full);
        }
        let weights: Vec<f64> = full.counts().iter().map(|&c| c as f64).collect();
        let counts = sample_multinomial(users as u64, &weights, rng)?;
        PopulationCounts::from_counts(format!("{name}#{users}"), full.domain(), counts)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Ipums => "IPUMS",
            DatasetKind::Fire => "Fire",
        }
    }

    /// The workload's item domain.
    pub fn domain(self) -> Domain {
        let (_, d, _, _) = self.spec();
        Domain::new(d).expect("corpus domains are non-empty")
    }

    /// Full-corpus user count `n` (the paper's §VI-A.1 populations).
    pub fn total_users(self) -> usize {
        let (_, _, n, _) = self.spec();
        n
    }

    /// Parses `"ipums" | "fire"` (case-insensitive).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown names.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ipums" => Ok(DatasetKind::Ipums),
            "fire" => Ok(DatasetKind::Fire),
            other => Err(LdpError::invalid(format!(
                "unknown dataset '{other}' (ipums|fire)"
            ))),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn ipums_matches_paper_dimensions() {
        let mut rng = rng_from_seed(1);
        // Scale down for test speed; dimensions verified proportionally.
        let ds = DatasetKind::Ipums.generate(0.01, &mut rng).unwrap();
        assert_eq!(ds.domain().size(), IPUMS_DOMAIN);
        assert_eq!(ds.len(), (IPUMS_USERS as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn fire_matches_paper_dimensions() {
        let mut rng = rng_from_seed(2);
        let ds = DatasetKind::Fire.generate(0.01, &mut rng).unwrap();
        assert_eq!(ds.domain().size(), FIRE_DOMAIN);
        assert_eq!(ds.len(), (FIRE_USERS as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn fire_is_flatter_than_ipums() {
        let mut rng = rng_from_seed(3);
        let ipums = DatasetKind::Ipums.generate(0.05, &mut rng).unwrap();
        let fire = DatasetKind::Fire.generate(0.05, &mut rng).unwrap();
        let top_ipums = ipums.true_frequencies().into_iter().fold(0.0, f64::max);
        let top_fire = fire.true_frequencies().into_iter().fold(0.0, f64::max);
        assert!(
            top_ipums > top_fire,
            "ipums head {top_ipums} vs fire head {top_fire}"
        );
    }

    #[test]
    fn full_scale_constants() {
        assert_eq!(IPUMS_DOMAIN, 102);
        assert_eq!(IPUMS_USERS, 389_894);
        assert_eq!(FIRE_DOMAIN, 490);
        assert_eq!(FIRE_USERS, 667_574);
    }

    #[test]
    fn generate_counts_matches_generate_dimensions() {
        for kind in DatasetKind::ALL {
            let mut rng = rng_from_seed(4);
            let (_, d, n, _) = kind.spec();
            for scale in [1.0, 0.01] {
                let pop = kind.generate_counts(scale, &mut rng).unwrap();
                assert_eq!(pop.domain().size(), d);
                let expect = if scale == 1.0 {
                    n
                } else {
                    (n as f64 * scale).ceil() as usize
                };
                assert_eq!(pop.len(), expect, "{kind} at scale {scale}");
            }
            assert!(kind.generate_counts(0.0, &mut rng).is_err());
            assert!(kind.generate_counts(1.5, &mut rng).is_err());
        }
    }

    #[test]
    fn generate_user_counts_matches_the_fraction_path_bitwise() {
        // The streaming engine's contract: generate_counts(scale) and
        // generate_user_counts(⌈n·scale⌉) consume the same RNG draws and
        // produce the same histogram — including at full scale.
        for kind in DatasetKind::ALL {
            let (_, _, n, _) = kind.spec();
            for scale in [0.004, 0.01, 1.0] {
                let users = ((n as f64) * scale).ceil().max(1.0) as usize;
                let by_scale = kind.generate_counts(scale, &mut rng_from_seed(77)).unwrap();
                let by_users = kind
                    .generate_user_counts(users, &mut rng_from_seed(77))
                    .unwrap();
                assert_eq!(by_scale.counts(), by_users.counts(), "{kind} @ {scale}");
                assert_eq!(by_scale.len(), by_users.len());
            }
            assert!(kind.generate_user_counts(0, &mut rng_from_seed(1)).is_err());
            // Streams may ingest more users than the static corpus held:
            // counts draw with replacement from the realized frequencies.
            let oversized = kind
                .generate_user_counts(n + 10_000, &mut rng_from_seed(1))
                .unwrap();
            assert_eq!(oversized.len(), n + 10_000);
        }
    }

    #[test]
    fn domain_users_and_parse_accessors() {
        assert_eq!(DatasetKind::Ipums.domain().size(), IPUMS_DOMAIN);
        assert_eq!(DatasetKind::Fire.domain().size(), FIRE_DOMAIN);
        assert_eq!(DatasetKind::Ipums.total_users(), IPUMS_USERS);
        assert_eq!(DatasetKind::Fire.total_users(), FIRE_USERS);
        assert_eq!(DatasetKind::parse("IPUMS").unwrap(), DatasetKind::Ipums);
        assert_eq!(DatasetKind::parse("fire").unwrap(), DatasetKind::Fire);
        assert!(DatasetKind::parse("census").is_err());
    }

    #[test]
    fn generate_counts_is_deterministic_per_seed() {
        let a = DatasetKind::Ipums
            .generate_counts(0.1, &mut rng_from_seed(9))
            .unwrap();
        let b = DatasetKind::Ipums
            .generate_counts(0.1, &mut rng_from_seed(9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_counts_matches_materialized_frequencies() {
        // Same distribution as the item-materializing path: the realized
        // frequency vectors must agree within the multinomial envelope
        // (6σ per item at n ≈ 19.5k).
        let mut rng_counts = rng_from_seed(11);
        let mut rng_items = rng_from_seed(12);
        let scale = 0.05;
        let pop = DatasetKind::Ipums
            .generate_counts(scale, &mut rng_counts)
            .unwrap();
        let ds = DatasetKind::Ipums.generate(scale, &mut rng_items).unwrap();
        assert_eq!(pop.len(), ds.len());
        let n = pop.len() as f64;
        for (v, (&a, &b)) in pop
            .true_frequencies()
            .iter()
            .zip(&ds.true_frequencies())
            .enumerate()
        {
            let p = f64::midpoint(a, b);
            let sigma = (p.max(1e-6) * (1.0 - p) / n).sqrt();
            assert!((a - b).abs() < 6.0 * sigma * 2.0, "item {v}: {a} vs {b}");
        }
    }
}
