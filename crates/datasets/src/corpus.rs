//! The paper's two evaluation workloads, reproduced synthetically.
//!
//! | Paper dataset | Attribute | d | n | Our stand-in |
//! |---|---|---|---|---|
//! | IPUMS (2017 census) | city | 102 | 389,894 | Zipf(1.05) over 102 items |
//! | SF Fire ("Alarms")  | unit ID | 490 | 667,574 | Zipf(0.75) over 490 items |
//!
//! City populations are classically Zipf-distributed with exponent ≈ 1;
//! fire-unit workloads are flatter (dispatch spreads load), hence the
//! smaller exponent. LDPRecover's behaviour depends on `(d, n, ε, β, η)`
//! and the broad frequency shape only — see DESIGN.md §3 for the full
//! substitution argument and `Dataset::from_item_file` for plugging in the
//! real extracts.

use ldp_common::sampling::sample_multinomial;
use ldp_common::{LdpError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, PopulationCounts};
use crate::synthetic::{zipf_counts, zipf_dataset};

/// IPUMS domain size (paper §VI-A.1).
pub const IPUMS_DOMAIN: usize = 102;
/// IPUMS user count (paper §VI-A.1).
pub const IPUMS_USERS: usize = 389_894;
/// Fire domain size (paper §VI-A.1).
pub const FIRE_DOMAIN: usize = 490;
/// Fire user count (paper §VI-A.1).
pub const FIRE_USERS: usize = 667_574;

/// IPUMS-like synthetic workload (d = 102, n = 389,894, Zipf 1.05).
///
/// # Errors
/// Propagates generator validation (never fails for these constants).
pub fn ipums_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    let (name, d, n, s) = DatasetKind::Ipums.spec();
    zipf_dataset(name, d, n, s, rng)
}

/// Fire-like synthetic workload (d = 490, n = 667,574, Zipf 0.75).
///
/// # Errors
/// Propagates generator validation (never fails for these constants).
pub fn fire_like<R: Rng + ?Sized>(rng: &mut R) -> Result<Dataset> {
    let (name, d, n, s) = DatasetKind::Fire.spec();
    zipf_dataset(name, d, n, s, rng)
}

/// Which evaluation workload an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// IPUMS-like (d = 102, n = 389,894).
    Ipums,
    /// Fire-like (d = 490, n = 667,574).
    Fire,
}

impl DatasetKind {
    /// Both workloads, in the paper's presentation order.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::Ipums, DatasetKind::Fire];

    /// `(name, d, n, zipf exponent)` of the synthetic stand-in.
    fn spec(self) -> (&'static str, usize, usize, f64) {
        match self {
            DatasetKind::Ipums => ("IPUMS", IPUMS_DOMAIN, IPUMS_USERS, 1.05),
            DatasetKind::Fire => ("Fire", FIRE_DOMAIN, FIRE_USERS, 0.75),
        }
    }

    /// Materializes the workload (optionally scaled down; see
    /// [`Dataset::subsample`]).
    ///
    /// # Errors
    /// Propagates generator / subsample validation.
    pub fn generate<R: Rng + ?Sized>(self, scale: f64, rng: &mut R) -> Result<Dataset> {
        let full = match self {
            DatasetKind::Ipums => ipums_like(rng)?,
            DatasetKind::Fire => fire_like(rng)?,
        };
        if scale == 1.0 {
            Ok(full)
        } else {
            full.subsample(scale, rng)
        }
    }

    /// Samples the workload's *count vector* directly, in `O(d)` instead
    /// of `O(n)` — exactly distributed as [`DatasetKind::generate`]'s
    /// counts at the same scale. The full-corpus counts are one
    /// `Multinomial(n, zipf)` draw; scaling down composes a second
    /// multinomial over the realized full-corpus frequencies, mirroring
    /// [`Dataset::subsample`]'s draw-with-replacement (whose counts have
    /// that exact conditional law).
    ///
    /// This is the dataset path of the batched aggregation engine: the
    /// engine never looks at individual users, so nothing `O(n)` needs to
    /// exist at all.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `scale ∉ (0, 1]`; otherwise
    /// propagates generator validation.
    pub fn generate_counts<R: Rng + ?Sized>(
        self,
        scale: f64,
        rng: &mut R,
    ) -> Result<PopulationCounts> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(LdpError::invalid(format!(
                "scale must be in (0,1], got {scale}"
            )));
        }
        let (name, d, n, s) = self.spec();
        let full = zipf_counts(name, d, n, s, rng)?;
        if scale == 1.0 {
            return Ok(full);
        }
        let target = ((n as f64) * scale).ceil().max(1.0) as u64;
        let weights: Vec<f64> = full.counts().iter().map(|&c| c as f64).collect();
        let counts = sample_multinomial(target, &weights, rng)?;
        PopulationCounts::from_counts(format!("{name}@{scale}"), full.domain(), counts)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Ipums => "IPUMS",
            DatasetKind::Fire => "Fire",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn ipums_matches_paper_dimensions() {
        let mut rng = rng_from_seed(1);
        // Scale down for test speed; dimensions verified proportionally.
        let ds = DatasetKind::Ipums.generate(0.01, &mut rng).unwrap();
        assert_eq!(ds.domain().size(), IPUMS_DOMAIN);
        assert_eq!(ds.len(), (IPUMS_USERS as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn fire_matches_paper_dimensions() {
        let mut rng = rng_from_seed(2);
        let ds = DatasetKind::Fire.generate(0.01, &mut rng).unwrap();
        assert_eq!(ds.domain().size(), FIRE_DOMAIN);
        assert_eq!(ds.len(), (FIRE_USERS as f64 * 0.01).ceil() as usize);
    }

    #[test]
    fn fire_is_flatter_than_ipums() {
        let mut rng = rng_from_seed(3);
        let ipums = DatasetKind::Ipums.generate(0.05, &mut rng).unwrap();
        let fire = DatasetKind::Fire.generate(0.05, &mut rng).unwrap();
        let top_ipums = ipums.true_frequencies().into_iter().fold(0.0, f64::max);
        let top_fire = fire.true_frequencies().into_iter().fold(0.0, f64::max);
        assert!(
            top_ipums > top_fire,
            "ipums head {top_ipums} vs fire head {top_fire}"
        );
    }

    #[test]
    fn full_scale_constants() {
        assert_eq!(IPUMS_DOMAIN, 102);
        assert_eq!(IPUMS_USERS, 389_894);
        assert_eq!(FIRE_DOMAIN, 490);
        assert_eq!(FIRE_USERS, 667_574);
    }

    #[test]
    fn generate_counts_matches_generate_dimensions() {
        for kind in DatasetKind::ALL {
            let mut rng = rng_from_seed(4);
            let (_, d, n, _) = kind.spec();
            for scale in [1.0, 0.01] {
                let pop = kind.generate_counts(scale, &mut rng).unwrap();
                assert_eq!(pop.domain().size(), d);
                let expect = if scale == 1.0 {
                    n
                } else {
                    (n as f64 * scale).ceil() as usize
                };
                assert_eq!(pop.len(), expect, "{kind} at scale {scale}");
            }
            assert!(kind.generate_counts(0.0, &mut rng).is_err());
            assert!(kind.generate_counts(1.5, &mut rng).is_err());
        }
    }

    #[test]
    fn generate_counts_is_deterministic_per_seed() {
        let a = DatasetKind::Ipums
            .generate_counts(0.1, &mut rng_from_seed(9))
            .unwrap();
        let b = DatasetKind::Ipums
            .generate_counts(0.1, &mut rng_from_seed(9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_counts_matches_materialized_frequencies() {
        // Same distribution as the item-materializing path: the realized
        // frequency vectors must agree within the multinomial envelope
        // (6σ per item at n ≈ 19.5k).
        let mut rng_counts = rng_from_seed(11);
        let mut rng_items = rng_from_seed(12);
        let scale = 0.05;
        let pop = DatasetKind::Ipums
            .generate_counts(scale, &mut rng_counts)
            .unwrap();
        let ds = DatasetKind::Ipums.generate(scale, &mut rng_items).unwrap();
        assert_eq!(pop.len(), ds.len());
        let n = pop.len() as f64;
        for (v, (&a, &b)) in pop
            .true_frequencies()
            .iter()
            .zip(&ds.true_frequencies())
            .enumerate()
        {
            let p = f64::midpoint(a, b);
            let sigma = (p.max(1e-6) * (1.0 - p) / n).sqrt();
            assert!((a - b).abs() < 6.0 * sigma * 2.0, "item {v}: {a} vs {b}");
        }
    }
}
