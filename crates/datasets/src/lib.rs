#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Dataset substrate for the LDPRecover reproduction.
//!
//! The paper evaluates on two real-world datasets (§VI-A.1):
//!
//! * **IPUMS** — 2017 U.S. census extract, attribute "city":
//!   d = 102 items, n = 389,894 users.
//! * **Fire** — San Francisco Fire Department "Alarms" service calls,
//!   attribute "unit ID": d = 490 items, n = 667,574 users.
//!
//! Neither raw extract ships with this reproduction, so [`corpus`] provides
//! synthetic stand-ins with the *same* domain sizes, user counts, and
//! heavy-tailed shapes (city populations ≈ Zipf(1.05); unit IDs flatter,
//! ≈ Zipf(0.75)); see DESIGN.md §3 for why this preserves the paper's
//! phenomena. [`dataset::Dataset::from_item_file`] loads the real extracts
//! (one item index per line) if you have them.

pub mod corpus;
pub mod dataset;
pub mod presets;
pub mod synthetic;

pub use corpus::{fire_like, ipums_like, DatasetKind};
pub use dataset::{Dataset, PopulationCounts};
pub use presets::ScalePreset;
pub use synthetic::{geometric_dataset, uniform_dataset, zipf_counts, zipf_dataset};
