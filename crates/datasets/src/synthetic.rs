//! Parametric synthetic dataset generators.

use ldp_common::sampling::{sample_multinomial, zipf_weights, AliasTable};
use ldp_common::{Domain, Result};
use rand::Rng;

use crate::dataset::{Dataset, PopulationCounts};

/// Samples `n` users from a Zipf(s) item distribution over `d` items
/// (item 0 most frequent).
///
/// # Errors
/// Propagates domain / alias-table validation (`d ≥ 1`, `n ≥ 1`).
pub fn zipf_dataset<R: Rng + ?Sized>(
    name: &str,
    d: usize,
    n: usize,
    s: f64,
    rng: &mut R,
) -> Result<Dataset> {
    let domain = Domain::new(d)?;
    let table = AliasTable::new(&zipf_weights(d, s))?;
    let items = (0..n).map(|_| table.sample(rng) as u32).collect();
    Dataset::from_items(name, domain, items)
}

/// Samples the *counts* of a Zipf(s) population directly —
/// `Multinomial(n, zipf)`, the exact distribution of [`zipf_dataset`]'s
/// count vector — in `O(d)` instead of `O(n)` work.
///
/// # Errors
/// Propagates domain / weight validation (`d ≥ 1`, `n ≥ 1`).
pub fn zipf_counts<R: Rng + ?Sized>(
    name: &str,
    d: usize,
    n: usize,
    s: f64,
    rng: &mut R,
) -> Result<PopulationCounts> {
    let domain = Domain::new(d)?;
    let counts = sample_multinomial(n as u64, &zipf_weights(d, s), rng)?;
    PopulationCounts::from_counts(name, domain, counts)
}

/// Samples `n` users uniformly over `d` items.
///
/// # Errors
/// Propagates domain validation.
pub fn uniform_dataset<R: Rng + ?Sized>(
    name: &str,
    d: usize,
    n: usize,
    rng: &mut R,
) -> Result<Dataset> {
    let domain = Domain::new(d)?;
    let items = (0..n).map(|_| rng.gen_range(0..d) as u32).collect();
    Dataset::from_items(name, domain, items)
}

/// Samples `n` users from a truncated geometric distribution
/// (`P(v) ∝ (1−rho)^v`), a sharper head than Zipf.
///
/// # Errors
/// Propagates domain / alias-table validation; `rho` must lie in (0, 1).
pub fn geometric_dataset<R: Rng + ?Sized>(
    name: &str,
    d: usize,
    n: usize,
    rho: f64,
    rng: &mut R,
) -> Result<Dataset> {
    let domain = Domain::new(d)?;
    if !(rho > 0.0 && rho < 1.0) {
        return Err(ldp_common::LdpError::invalid(format!(
            "geometric rho must be in (0,1), got {rho}"
        )));
    }
    let weights: Vec<f64> = (0..d).map(|v| (1.0 - rho).powi(v as i32)).collect();
    let table = AliasTable::new(&weights)?;
    let items = (0..n).map(|_| table.sample(rng) as u32).collect();
    Dataset::from_items(name, domain, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    #[test]
    fn zipf_head_dominates() {
        let mut rng = rng_from_seed(1);
        let ds = zipf_dataset("z", 50, 100_000, 1.0, &mut rng).unwrap();
        let f = ds.true_frequencies();
        assert!(f[0] > f[1] && f[1] > f[2]);
        // Zipf(1) over 50 items: f0 = 1/H_50 ≈ 0.222.
        assert!((f[0] - 0.222).abs() < 0.01, "f0={}", f[0]);
    }

    #[test]
    fn uniform_is_flat() {
        let mut rng = rng_from_seed(2);
        let ds = uniform_dataset("u", 20, 200_000, &mut rng).unwrap();
        for &f in &ds.true_frequencies() {
            assert!((f - 0.05).abs() < 0.005);
        }
    }

    #[test]
    fn geometric_validates_and_decays() {
        let mut rng = rng_from_seed(3);
        assert!(geometric_dataset("g", 10, 100, 0.0, &mut rng).is_err());
        assert!(geometric_dataset("g", 10, 100, 1.0, &mut rng).is_err());
        let ds = geometric_dataset("g", 10, 100_000, 0.5, &mut rng).unwrap();
        let f = ds.true_frequencies();
        assert!((f[0] - 0.5).abs() < 0.02);
        assert!((f[1] - 0.25).abs() < 0.02);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = zipf_dataset("z", 10, 1000, 1.0, &mut rng_from_seed(7)).unwrap();
        let b = zipf_dataset("z", 10, 1000, 1.0, &mut rng_from_seed(7)).unwrap();
        assert_eq!(a.items(), b.items());
    }
}
