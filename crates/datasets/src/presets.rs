//! Scale-down presets for the reproduction harness.
//!
//! The scenario engine (`ldp_sim::scenario`) runs every figure at a named
//! preset instead of a raw fraction: `paper` is the full-scale population
//! of §VI-A.1, while `small` shrinks each dataset to roughly one thousand
//! users so the complete figure catalog — and the golden regression suite
//! built on it — fits inside a plain `cargo test -q` run. MSE scales as
//! `1/n` uniformly across methods (see `tests/scale_invariance.rs`), so
//! method ordering is preserved at any preset; absolute levels are not.

use ldp_common::{LdpError, Result};

use crate::corpus::DatasetKind;

/// A named population scale for the reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalePreset {
    /// ≈ 1.2k users per dataset, 5 trials — the golden-suite / CI setting.
    Small,
    /// The paper's full populations (389,894 / 667,574 users), 10 trials.
    Paper,
}

impl ScalePreset {
    /// The subsample fraction this preset applies to a dataset.
    ///
    /// `Small` picks per-dataset fractions so both workloads land at a
    /// comparable user count (~1.2k) despite their 1.7× size gap.
    pub fn fraction(self, dataset: DatasetKind) -> f64 {
        match (self, dataset) {
            (ScalePreset::Small, DatasetKind::Ipums) => 0.003, // ≈ 1,170 users
            (ScalePreset::Small, DatasetKind::Fire) => 0.0018, // ≈ 1,202 users
            (ScalePreset::Paper, _) => 1.0,
        }
    }

    /// Trials per experiment cell at this preset (the paper runs 10;
    /// `small` runs 5 so the golden suite's SEM-derived tolerance bands
    /// stay meaningfully narrower than the means they gate).
    pub fn trials(self) -> usize {
        match self {
            ScalePreset::Small => 5,
            ScalePreset::Paper => 10,
        }
    }

    /// The preset's name (`"small"` / `"paper"`).
    pub fn name(self) -> &'static str {
        match self {
            ScalePreset::Small => "small",
            ScalePreset::Paper => "paper",
        }
    }

    /// Parses `"small" | "paper"` (case-insensitive).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for unknown names.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Ok(ScalePreset::Small),
            "paper" => Ok(ScalePreset::Paper),
            other => Err(LdpError::invalid(format!(
                "unknown scale preset '{other}' (small|paper)"
            ))),
        }
    }
}

impl std::fmt::Display for ScalePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_is_full_scale() {
        for kind in DatasetKind::ALL {
            assert_eq!(ScalePreset::Paper.fraction(kind), 1.0);
        }
        assert_eq!(ScalePreset::Paper.trials(), 10);
    }

    #[test]
    fn small_preset_lands_both_datasets_near_the_same_user_count() {
        let ipums = (crate::corpus::IPUMS_USERS as f64
            * ScalePreset::Small.fraction(DatasetKind::Ipums))
        .ceil();
        let fire = (crate::corpus::FIRE_USERS as f64
            * ScalePreset::Small.fraction(DatasetKind::Fire))
        .ceil();
        assert!((500.0..2500.0).contains(&ipums), "ipums n={ipums}");
        assert!((500.0..2500.0).contains(&fire), "fire n={fire}");
        assert!((ipums - fire).abs() / ipums < 0.25, "{ipums} vs {fire}");
    }

    #[test]
    fn parse_roundtrips_and_rejects() {
        for preset in [ScalePreset::Small, ScalePreset::Paper] {
            assert_eq!(ScalePreset::parse(preset.name()).unwrap(), preset);
            assert_eq!(
                ScalePreset::parse(&preset.to_string().to_uppercase()).unwrap(),
                preset
            );
        }
        assert!(ScalePreset::parse("medium").is_err());
    }
}
