//! The in-memory dataset representation.

use std::io::BufRead;
use std::path::Path;

use ldp_common::float::exact_eq;
use ldp_common::rng::uniform_index;
use ldp_common::{Domain, LdpError, Result};
use rand::Rng;

/// A materialized user population: each entry is one user's private item.
///
/// Items are dense `u32` indices into the domain (the paper's datasets map
/// "city" / "unit ID" strings to indices once, offline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    name: String,
    domain: Domain,
    items: Vec<u32>,
}

impl Dataset {
    /// Wraps an item vector, validating domain membership.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] for zero users;
    /// [`LdpError::DomainMismatch`] for out-of-domain items.
    pub fn from_items(name: impl Into<String>, domain: Domain, items: Vec<u32>) -> Result<Self> {
        if items.is_empty() {
            return Err(LdpError::EmptyInput("dataset items"));
        }
        if let Some(&bad) = items.iter().find(|&&v| !domain.contains(v as usize)) {
            return Err(LdpError::DomainMismatch {
                expected: domain.size(),
                got: bad as usize,
                context: "dataset item",
            });
        }
        Ok(Self {
            name: name.into(),
            domain,
            items,
        })
    }

    /// Loads a dataset from a text file with one item index per line
    /// (blank lines and `#` comments skipped) — the hook for plugging in
    /// the paper's real IPUMS / Fire extracts.
    ///
    /// # Errors
    /// I/O failures, unparsable lines (with line numbers), out-of-domain
    /// items, or an empty file.
    pub fn from_item_file(
        name: impl Into<String>,
        domain: Domain,
        path: impl AsRef<Path>,
    ) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut items = Vec::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let value: u32 = trimmed.parse().map_err(|e| LdpError::Parse {
                line: idx + 1,
                message: format!("expected item index, got '{trimmed}': {e}"),
            })?;
            items.push(value);
        }
        Self::from_items(name, domain, items)
    }

    /// Dataset name (for experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The item domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of users `n`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the dataset has no users (never constructible).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The users' items.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Exact item counts.
    pub fn counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.domain.size()];
        for &v in &self.items {
            counts[v as usize] += 1;
        }
        counts
    }

    /// The ground-truth frequency vector `f_X` (sums to 1).
    pub fn true_frequencies(&self) -> Vec<f64> {
        let n = self.items.len() as f64;
        self.counts().iter().map(|&c| c as f64 / n).collect()
    }

    /// A uniform random subsample with `⌈fraction·n⌉` users (the harness's
    /// `--scale` knob; MSE scales as `1/n` uniformly across methods so
    /// method ordering is preserved — see `tests/scale_invariance.rs`).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when `fraction ∉ (0, 1]`.
    pub fn subsample<R: Rng + ?Sized>(&self, fraction: f64, rng: &mut R) -> Result<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(LdpError::invalid(format!(
                "subsample fraction must be in (0,1], got {fraction}"
            )));
        }
        if exact_eq(fraction, 1.0) {
            return Ok(self.clone());
        }
        let target = ((self.items.len() as f64) * fraction).ceil() as usize;
        let target = target.max(1);
        // Uniform with replacement: preserves expected frequencies and is
        // O(target) regardless of n.
        let items = (0..target)
            .map(|_| self.items[uniform_index(rng, self.items.len())])
            .collect();
        Self::from_items(format!("{}@{fraction}", self.name), self.domain, items)
    }
}

/// A population materialized only as per-item counts — no item array.
///
/// The count-based batched aggregation engine never looks at individual
/// users, so trials that run it can sample the population histogram
/// directly (`Multinomial(n, f)` — the exact distribution of the counts of
/// `n` iid item draws) and skip the `O(n)` item materialization entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationCounts {
    name: String,
    domain: Domain,
    counts: Vec<u64>,
    total: usize,
}

impl PopulationCounts {
    /// Wraps a count vector, validating shape and non-emptiness.
    ///
    /// # Errors
    /// [`LdpError::DomainMismatch`] when `counts` does not cover the
    /// domain; [`LdpError::EmptyInput`] when all counts are zero.
    pub fn from_counts(name: impl Into<String>, domain: Domain, counts: Vec<u64>) -> Result<Self> {
        if counts.len() != domain.size() {
            return Err(LdpError::DomainMismatch {
                expected: domain.size(),
                got: counts.len(),
                context: "population count vector",
            });
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Err(LdpError::EmptyInput("population counts"));
        }
        Ok(Self {
            name: name.into(),
            domain,
            counts,
            total: total as usize,
        })
    }

    /// Population name (for experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The item domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of users `n`.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when the population has no users (never constructible).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact item counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The ground-truth frequency vector `f_X` (sums to 1).
    pub fn true_frequencies(&self) -> Vec<f64> {
        let n = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }
}

impl Dataset {
    /// This dataset's count-level view (drops the item array).
    pub fn to_counts(&self) -> PopulationCounts {
        PopulationCounts {
            name: self.name.clone(),
            domain: self.domain,
            counts: self.counts(),
            total: self.items.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_common::rng::rng_from_seed;

    fn tiny() -> Dataset {
        Dataset::from_items("tiny", Domain::new(4).unwrap(), vec![0, 1, 1, 2, 2, 2]).unwrap()
    }

    #[test]
    fn construction_validates() {
        let d = Domain::new(3).unwrap();
        assert!(Dataset::from_items("x", d, vec![]).is_err());
        assert!(Dataset::from_items("x", d, vec![0, 3]).is_err());
        assert!(Dataset::from_items("x", d, vec![0, 2]).is_ok());
    }

    #[test]
    fn counts_and_frequencies() {
        let ds = tiny();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.counts(), vec![1, 2, 3, 0]);
        let f = ds.true_frequencies();
        assert!((f[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((f[2] - 0.5).abs() < 1e-12);
        assert_eq!(f[3], 0.0);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsample_preserves_distribution() {
        let domain = Domain::new(3).unwrap();
        let mut items = vec![0u32; 60_000];
        items.extend(vec![1u32; 30_000]);
        items.extend(vec![2u32; 10_000]);
        let ds = Dataset::from_items("big", domain, items).unwrap();
        let mut rng = rng_from_seed(1);
        let sub = ds.subsample(0.1, &mut rng).unwrap();
        assert_eq!(sub.len(), 10_000);
        let f = sub.true_frequencies();
        assert!((f[0] - 0.6).abs() < 0.03);
        assert!((f[1] - 0.3).abs() < 0.03);
        assert!((f[2] - 0.1).abs() < 0.03);
    }

    #[test]
    fn subsample_validates_and_full_is_identity() {
        let ds = tiny();
        let mut rng = rng_from_seed(2);
        assert!(ds.subsample(0.0, &mut rng).is_err());
        assert!(ds.subsample(1.5, &mut rng).is_err());
        let full = ds.subsample(1.0, &mut rng).unwrap();
        assert_eq!(full.items(), ds.items());
    }

    #[test]
    fn population_counts_mirror_dataset_views() {
        let ds = tiny();
        let pop = ds.to_counts();
        assert_eq!(pop.len(), ds.len());
        assert_eq!(pop.counts(), &ds.counts()[..]);
        assert_eq!(pop.true_frequencies(), ds.true_frequencies());
        assert_eq!(pop.domain(), ds.domain());
        assert!(!pop.is_empty());
    }

    #[test]
    fn population_counts_validate() {
        let d = Domain::new(3).unwrap();
        assert!(PopulationCounts::from_counts("x", d, vec![1, 2]).is_err());
        assert!(PopulationCounts::from_counts("x", d, vec![0, 0, 0]).is_err());
        let pop = PopulationCounts::from_counts("x", d, vec![0, 4, 1]).unwrap();
        assert_eq!(pop.len(), 5);
        assert_eq!(pop.name(), "x");
    }

    #[test]
    fn file_loader_roundtrip() {
        let dir = std::env::temp_dir().join("ldprecover-test-datasets");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("items.txt");
        std::fs::write(&path, "# comment\n0\n1\n\n2\n1\n").unwrap();
        let ds = Dataset::from_item_file("file", Domain::new(3).unwrap(), &path).unwrap();
        assert_eq!(ds.items(), &[0, 1, 2, 1]);

        std::fs::write(&path, "0\nnot-a-number\n").unwrap();
        let err = Dataset::from_item_file("file", Domain::new(3).unwrap(), &path).unwrap_err();
        assert!(matches!(err, LdpError::Parse { line: 2, .. }));

        std::fs::write(&path, "7\n").unwrap();
        assert!(Dataset::from_item_file("file", Domain::new(3).unwrap(), &path).is_err());
    }
}
