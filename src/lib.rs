#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Umbrella crate for the LDPRecover (Sun et al., ICDE 2024) reproduction.
//!
//! This crate contains no logic of its own: it re-exports the eight
//! workspace crates so the repository-level integration tests under
//! `tests/` and the runnable `examples/` have a single dependency root,
//! and so `cargo doc` renders one entry point covering the whole system.
//!
//! # Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`ldp_common`] | Domains, RNG plumbing, hashing, bit vectors, vector math, statistics |
//! | [`ldp_protocols`] | GRR / OUE / OLH pure LDP protocols + binary RR / Harmony |
//! | [`ldp_attacks`] | MGA, adaptive, input-poisoning, and multi-attacker poisoning |
//! | [`ldprecover`] | The recovery pipeline: estimator, malicious learning, norm-sub solver |
//! | [`ldp_datasets`] | IPUMS/Fire-shaped synthetic corpora and dataset loading |
//! | [`ldp_kv`] | Key-value LDP extension (PrivKV-style protocol, M2GA, LDPRecover-KV) |
//! | [`ldp_sim`] | Trial pipeline, multi-trial runner, metrics, table rendering |
//! | [`ldp_bench`] | Experiment harness shared by the figure/table reproduction binaries |

pub use ldp_attacks;
pub use ldp_bench;
pub use ldp_common;
pub use ldp_datasets;
pub use ldp_kv;
pub use ldp_protocols;
pub use ldp_sim;
pub use ldprecover;
